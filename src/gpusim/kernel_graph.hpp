// Kernel graphs and streams: deferred, dependency-aware kernel submission.
//
// Instead of calling Launcher::launch once per kernel (globally serializing
// every kernel of a pipeline), callers *enqueue* kernels into a KernelGraph
// — name, launch shape, body, explicit dependency edges — and execute the
// whole graph with Launcher::run.  The graph scheduler then
//
//  * runs dependency-free kernels concurrently on the launcher's parallel
//    block-executor worker pool (wavefront order: all kernels whose
//    dependencies completed form one flat block work-list), and
//  * evaluates a timing-overlap model: every node's simulated finish time is
//    its own kernel time plus the latest finish of its dependencies, so the
//    GraphReport carries both the serial sum (today's Launcher history
//    total) and the graph makespan (what a device with concurrent kernel
//    execution would take).
//
// Determinism contract: enqueue order is required to be a topological order
// (a node may only depend on already-enqueued nodes), every node's
// per-block results are reduced in block order, and history / trace /
// counters are committed in *enqueue* order after the whole graph ran.  The
// reports are therefore bit-identical for every worker-thread count and for
// both execution modes — GraphExec::Serial exists only to pin host
// wall-clock behaviour (one kernel at a time, the pre-graph cadence), not
// to change results.
//
// A Stream is a thin enqueue helper that chains its kernels: each kernel
// enqueued on a stream implicitly depends on the stream's previous kernel,
// which is exactly CUDA's in-stream ordering.  Independent pipelines (e.g.
// the segments of sort::segmented_sort) use one stream each and their
// kernels overlap in the makespan model; cross-stream edges are expressed
// through the explicit dependency list.
//
// Kernel bodies may run concurrently with any body they are not ordered
// against, and must therefore only write data disjoint from every
// concurrent kernel's reads and writes (the launcher's per-block rule,
// lifted to graph granularity).  All pipelines in this repository satisfy
// this: dependent kernels communicate through buffers, independent kernels
// touch disjoint buffers.
//
// Replay contract: Launcher::run never mutates the graph, so a built graph
// is a reusable *template* — it may be executed any number of times, and
// each execution re-invokes the same bodies against whatever data their
// captured buffers hold at that moment (CUDA-graph style "rebind by
// refilling the bound allocations").  The only requirement is on the
// caller: every buffer a body captures must stay alive and un-moved for as
// long as the graph may run.  sort::SortEngine builds on this — its plans
// own both the graph and the buffers the graph's bodies reference, so the
// two lifetimes cannot diverge.  append() composes templates: a per-plan
// chain can be instantiated into a larger batch graph without re-enqueuing
// its kernels.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gpusim/block_context.hpp"
#include "gpusim/timing.hpp"

namespace cfmerge::gpusim {

using KernelBody = std::function<void(BlockContext&)>;

/// Index of a node within its KernelGraph (enqueue order, 0-based).
using NodeId = int;
inline constexpr NodeId kNoNode = -1;

struct KernelNode {
  std::string name;
  LaunchShape shape;
  KernelBody body;
  std::vector<NodeId> deps;  ///< all strictly smaller NodeIds
};

class Stream;

class KernelGraph {
 public:
  /// Enqueues a kernel.  Every dependency must name an already-enqueued
  /// node, so enqueue order is a topological order by construction.
  /// Throws std::invalid_argument on an empty grid or a bad dependency.
  NodeId add(std::string name, const LaunchShape& shape, KernelBody body,
             std::vector<NodeId> deps = {});

  /// A new stream whose kernels are enqueued into this graph.  The graph
  /// must outlive the stream.
  [[nodiscard]] Stream stream();

  /// Template instantiation: appends every node of `tpl` to this graph in
  /// `tpl`'s enqueue order, shifting its internal dependency edges past the
  /// nodes already enqueued here.  Appended subgraphs share no edges with
  /// each other or with prior nodes, exactly like independent streams, and
  /// the bodies are shared with (not copied from) `tpl`'s nodes — they
  /// still read and write the buffers they captured when `tpl` was built.
  /// Returns the id of `tpl`'s first node within this graph (kNoNode when
  /// `tpl` is empty).  Appending a graph to itself is not allowed.
  NodeId append(const KernelGraph& tpl);

  /// Removes every node, returning the graph to its just-constructed state
  /// so the allocation can be reused for a fresh build.
  void clear() { nodes_.clear(); }

  [[nodiscard]] const std::vector<KernelNode>& nodes() const { return nodes_; }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  /// Wavefront level of every node: 0 for dependency-free nodes, otherwise
  /// 1 + max(level of deps).  Nodes of equal level are mutually independent
  /// (no path connects them) and may execute concurrently.
  [[nodiscard]] std::vector<int> levels() const;

 private:
  std::vector<KernelNode> nodes_;
};

/// In-order enqueue handle: kernel k on a stream depends on kernel k-1 of
/// the same stream plus any `extra_deps` (cross-stream edges).
class Stream {
 public:
  NodeId enqueue(std::string name, const LaunchShape& shape, KernelBody body,
                 std::vector<NodeId> extra_deps = {});

  /// The stream's most recently enqueued node (kNoNode when empty) — use as
  /// an extra dependency to order another stream after this one.
  [[nodiscard]] NodeId last() const { return last_; }

 private:
  friend class KernelGraph;
  explicit Stream(KernelGraph* graph) : graph_(graph) {}

  KernelGraph* graph_;
  NodeId last_ = kNoNode;
};

}  // namespace cfmerge::gpusim
