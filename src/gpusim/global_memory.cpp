#include "gpusim/global_memory.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "gpusim/shared_memory.hpp"  // kInactiveLane

namespace cfmerge::gpusim {

namespace {
constexpr int kMaxLanes = 64;
}

GlobalAccessCost global_access_cost(std::span<const std::int64_t> byte_addrs, int elem_bytes,
                                    int transaction_bytes) {
  if (elem_bytes <= 0 || transaction_bytes <= 0)
    throw std::invalid_argument("global_access_cost: sizes must be positive");
  if (byte_addrs.size() > static_cast<std::size_t>(kMaxLanes))
    throw std::invalid_argument("global_access_cost: too many lanes");

  std::array<std::int64_t, 2 * kMaxLanes> segments{};
  int n = 0;
  GlobalAccessCost cost;
  for (const std::int64_t a : byte_addrs) {
    if (a == kInactiveLane) continue;
    assert(a >= 0 && "global byte address must be non-negative");
    ++cost.active_lanes;
    cost.bytes += elem_bytes;
    // An element may straddle a segment boundary; count both segments.
    const std::int64_t first = a / transaction_bytes;
    const std::int64_t last = (a + elem_bytes - 1) / transaction_bytes;
    for (std::int64_t s = first; s <= last; ++s)
      segments[static_cast<std::size_t>(n++)] = s;
  }
  if (n == 0) return cost;
  std::sort(segments.begin(), segments.begin() + n);
  cost.transactions =
      static_cast<int>(std::unique(segments.begin(), segments.begin() + n) - segments.begin());
  return cost;
}

void global_access_segments(std::span<const std::int64_t> byte_addrs, int elem_bytes,
                            int transaction_bytes, std::vector<std::int64_t>& out) {
  out.clear();
  for (const std::int64_t a : byte_addrs) {
    if (a == kInactiveLane) continue;
    const std::int64_t first = a / transaction_bytes;
    const std::int64_t last = (a + elem_bytes - 1) / transaction_bytes;
    for (std::int64_t s = first; s <= last; ++s) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace cfmerge::gpusim
