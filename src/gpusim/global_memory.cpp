#include "gpusim/global_memory.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace cfmerge::gpusim {

void global_access_segments(std::span<const std::int64_t> byte_addrs, int elem_bytes,
                            int transaction_bytes, std::vector<std::int64_t>& out) {
  out.clear();
  // A warp expands to at most two segments per lane; one up-front reserve
  // makes the reused per-context scratch allocation-free for good.
  if (out.capacity() < static_cast<std::size_t>(2 * kMaxLanes))
    out.reserve(static_cast<std::size_t>(2 * kMaxLanes));
  const int tshift = (transaction_bytes & (transaction_bytes - 1)) == 0
                         ? std::countr_zero(static_cast<unsigned>(transaction_bytes))
                         : -1;
  bool sorted = true;
  std::int64_t prev = std::numeric_limits<std::int64_t>::min();
  for (const std::int64_t a : byte_addrs) {
    if (a == kInactiveLane) continue;
    const std::int64_t first = tshift >= 0 ? a >> tshift : a / transaction_bytes;
    const std::int64_t last = tshift >= 0 ? (a + elem_bytes - 1) >> tshift
                                          : (a + elem_bytes - 1) / transaction_bytes;
    for (std::int64_t s = first; s <= last; ++s) {
      sorted &= s >= prev;
      prev = s;
      out.push_back(s);
    }
  }
  if (!sorted) std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace cfmerge::gpusim
