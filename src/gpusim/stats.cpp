#include "gpusim/stats.hpp"

namespace cfmerge::gpusim {

Counters& Counters::operator+=(const Counters& o) {
  warp_instructions += o.warp_instructions;
  shared_accesses += o.shared_accesses;
  shared_cycles += o.shared_cycles;
  bank_conflicts += o.bank_conflicts;
  gmem_requests += o.gmem_requests;
  gmem_transactions += o.gmem_transactions;
  gmem_bytes += o.gmem_bytes;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  barriers += o.barriers;
  return *this;
}

Counters Counters::operator+(const Counters& o) const {
  Counters c = *this;
  c += o;
  return c;
}

Counters& PhaseCounters::phase(std::string_view name) {
  return by_index(intern(name));
}

int PhaseCounters::intern(std::string_view name) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].first == name) return static_cast<int>(i);
  }
  phases_.emplace_back(std::string(name), Counters{});
  return static_cast<int>(phases_.size() - 1);
}

Counters PhaseCounters::total() const {
  Counters t;
  for (const auto& [n, c] : phases_) t += c;
  return t;
}

void PhaseCounters::merge(const PhaseCounters& o) {
  for (const auto& [n, c] : o.phases_) phase(n) += c;
}

}  // namespace cfmerge::gpusim
