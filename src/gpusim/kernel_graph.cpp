#include "gpusim/kernel_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace cfmerge::gpusim {

NodeId KernelGraph::add(std::string name, const LaunchShape& shape, KernelBody body,
                        std::vector<NodeId> deps) {
  if (shape.blocks <= 0)
    throw std::invalid_argument("KernelGraph::add: empty grid for kernel '" + name + "'");
  if (!body)
    throw std::invalid_argument("KernelGraph::add: null body for kernel '" + name + "'");
  const auto id = static_cast<NodeId>(nodes_.size());
  for (const NodeId d : deps)
    if (d < 0 || d >= id)
      throw std::invalid_argument(
          "KernelGraph::add: kernel '" + name +
          "' depends on a node that is not enqueued yet (enqueue order must be "
          "topological)");
  // Dedup so diamond helpers can pass overlapping edge lists freely.
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  nodes_.push_back({std::move(name), shape, std::move(body), std::move(deps)});
  return id;
}

Stream KernelGraph::stream() { return Stream(this); }

NodeId KernelGraph::append(const KernelGraph& tpl) {
  if (&tpl == this)
    throw std::invalid_argument("KernelGraph::append: cannot append a graph to itself");
  if (tpl.empty()) return kNoNode;
  const auto base = static_cast<NodeId>(nodes_.size());
  nodes_.reserve(nodes_.size() + tpl.nodes_.size());
  for (const KernelNode& node : tpl.nodes_) {
    std::vector<NodeId> deps = node.deps;
    for (NodeId& d : deps) d += base;
    nodes_.push_back({node.name, node.shape, node.body, std::move(deps)});
  }
  return base;
}

std::vector<int> KernelGraph::levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (const NodeId d : nodes_[i].deps)
      level[i] = std::max(level[i], level[static_cast<std::size_t>(d)] + 1);
  return level;
}

NodeId Stream::enqueue(std::string name, const LaunchShape& shape, KernelBody body,
                       std::vector<NodeId> extra_deps) {
  if (last_ != kNoNode) extra_deps.push_back(last_);
  last_ = graph_->add(std::move(name), shape, std::move(body), std::move(extra_deps));
  return last_;
}

}  // namespace cfmerge::gpusim
