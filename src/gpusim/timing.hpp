// Kernel timing model: a *serialized-resource* work model with a
// wave-quantized latency floor.
//
// Per-resource busy cycles:
//
//   compute_bound = warp_instructions / (issue_width * num_sms)
//   shared_bound  = shared_cycles / num_sms          (one LSU/shared unit per
//                   SM; each bank-conflict replay occupies it for
//                   shared_replay_cycles)
//   bw_bound      = gmem_bytes / dram_bytes_per_cycle
//   work_bound    = compute_bound + shared_bound + bw_bound
//   latency_bound = waves * mean_block_chain
//
//   kernel_cycles = launch_overhead + max(work_bound, latency_bound)
//
// where `waves = ceil(blocks / (num_sms * blocks_per_sm))` and
// `mean_block_chain` is the average critical path of a block (max over its
// warp chains, see BlockContext).
//
// Why additive rather than the classic max-roofline: merge-path kernels are
// dependence-dominated (the sequential merge and the binary searches are
// pointer chases), so an SM overlaps its ALU, LSU and DRAM service poorly —
// measured GPU mergesorts achieve a small fraction of the DRAM roofline.
// The additive model is the no-overlap limit of the roofline and is what
// makes the simulator reproduce the paper's *relative* effects (worst-case
// conflicts slowing the baseline by tens of percent; occupancy separating
// the two software parameter sets).  All conflict/transaction counters are
// model-independent; only the cycle estimates depend on this choice.
#pragma once

#include <cstdint>

#include "gpusim/device_spec.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/stats.hpp"

namespace cfmerge::gpusim {

struct LaunchShape {
  int blocks = 0;
  int threads_per_block = 0;
  std::size_t shared_bytes_per_block = 0;
  int regs_per_thread = 32;

  bool operator==(const LaunchShape&) const = default;
};

struct KernelTiming {
  double cycles = 0.0;
  double microseconds = 0.0;
  double compute_bound = 0.0;
  double shared_bound = 0.0;
  double bw_bound = 0.0;
  double work_bound = 0.0;  ///< compute + shared + bw
  double latency_bound = 0.0;
  /// Which term produced `cycles`: "latency" when the wave floor binds,
  /// otherwise the largest component of the work sum ("compute", "shared",
  /// "bw").
  const char* limiter = "none";
  OccupancyResult occupancy;
  int waves = 0;
};

/// Evaluates the timing model for one kernel launch.
/// `mean_block_chain` is the average BlockContext::block_chain() in cycles.
[[nodiscard]] KernelTiming simulate_timing(const DeviceSpec& dev, const LaunchShape& shape,
                                           const Counters& total, double mean_block_chain);

}  // namespace cfmerge::gpusim
