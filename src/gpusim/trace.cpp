#include "gpusim/trace.hpp"

#include <cassert>
#include <ostream>
#include <stdexcept>

namespace cfmerge::gpusim {

namespace {
const char* kind_name(AccessKind k) {
  switch (k) {
    case AccessKind::SharedRead: return "shared_read";
    case AccessKind::SharedWrite: return "shared_write";
    case AccessKind::GlobalRead: return "global_read";
    case AccessKind::GlobalWrite: return "global_write";
  }
  return "?";
}
}  // namespace

std::int16_t TraceSink::phase_id(std::string_view phase) {
  for (std::size_t i = 0; i < phases_.size(); ++i)
    if (phases_[i] == phase) return static_cast<std::int16_t>(i);
  if (phases_.size() >= 32767) throw std::runtime_error("TraceSink: too many phases");
  phases_.emplace_back(phase);
  return static_cast<std::int16_t>(phases_.size() - 1);
}

void TraceSink::record(std::int32_t block, std::int16_t warp, AccessKind kind,
                       std::string_view phase, std::span<const std::int64_t> addrs,
                       int cost) {
  record(block, warp, kind, phase_id(phase), addrs, cost);
}

void TraceSink::record(std::int32_t block, std::int16_t warp, AccessKind kind,
                       std::int16_t phase, std::span<const std::int64_t> addrs, int cost) {
  assert(phase >= 0 && static_cast<std::size_t>(phase) < phases_.size());
  TraceEvent e;
  e.block = block;
  e.warp = warp;
  e.kind = kind;
  e.phase_id = phase;
  e.cost = cost;
  e.first_addr = static_cast<std::uint32_t>(pool_.size());
  e.lanes = static_cast<std::uint16_t>(addrs.size());
  pool_.insert(pool_.end(), addrs.begin(), addrs.end());
  events_.push_back(e);
}

void TraceSink::reserve(std::size_t events, std::size_t pool_elems) {
  events_.reserve(events);
  pool_.reserve(pool_elems);
}

void TraceSink::merge_from(const TraceSink& other) {
  std::vector<std::int16_t> phase_map(other.phases_.size());
  for (std::size_t i = 0; i < other.phases_.size(); ++i)
    phase_map[i] = phase_id(other.phases_[i]);
  // Grow geometrically: an exact-fit reserve here would force a full
  // realloc + copy on every per-block merge (quadratic over a launch).
  const auto grow = [](auto& v, std::size_t extra) {
    const std::size_t need = v.size() + extra;
    if (need > v.capacity()) v.reserve(std::max(need, 2 * v.capacity()));
  };
  const auto base = static_cast<std::uint32_t>(pool_.size());
  grow(pool_, other.pool_.size());
  pool_.insert(pool_.end(), other.pool_.begin(), other.pool_.end());
  grow(events_, other.events_.size());
  for (TraceEvent e : other.events_) {
    e.phase_id = phase_map[static_cast<std::size_t>(e.phase_id)];
    e.first_addr += base;
    events_.push_back(e);
  }
}

void TraceSink::clear() {
  events_.clear();
  pool_.clear();
  phases_.clear();
}

std::int64_t TraceSink::shared_conflicts(std::string_view phase) const {
  std::int64_t total = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind != AccessKind::SharedRead && e.kind != AccessKind::SharedWrite) continue;
    if (!phase.empty() && phases_[static_cast<std::size_t>(e.phase_id)] != phase) continue;
    total += e.cost;
  }
  return total;
}

void TraceSink::write_csv(std::ostream& os) const {
  os << "block,warp,kind,phase,cost,addresses\n";
  for (const TraceEvent& e : events_) {
    os << e.block << ',' << e.warp << ',' << kind_name(e.kind) << ','
       << phases_[static_cast<std::size_t>(e.phase_id)] << ',' << e.cost << ',';
    const auto addrs = addresses(e);
    for (std::size_t l = 0; l < addrs.size(); ++l) {
      if (l) os << ' ';
      os << addrs[l];
    }
    os << '\n';
  }
}

}  // namespace cfmerge::gpusim
