#include "gpusim/launcher.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>

namespace cfmerge::gpusim {

namespace {

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Resolves a requested worker count (0 = environment / default) to the
/// concrete count used by launches.  See Launcher::set_threads.
int resolve_threads(int requested) {
  if (requested < 0)
    throw std::invalid_argument("Launcher: thread count must be non-negative");
  if (requested > 0) return requested;
  if (const char* env = std::getenv("CFMERGE_SIM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
    if (n == 0 && env[0] == '0') return hardware_threads();
  }
  return 1;
}

/// What one simulated block produces, reduced into the report in block
/// order after all blocks finish.
struct BlockOutcome {
  PhaseCounters counters;
  double chain = 0.0;
  std::size_t shared_bytes = 0;
  std::unique_ptr<TraceSink> trace;  // only when a sink is attached
  std::exception_ptr error;
};

/// Joins the pool on scope exit so a throw never leaks running threads.
struct PoolJoiner {
  std::vector<std::thread>& pool;
  ~PoolJoiner() {
    for (std::thread& t : pool)
      if (t.joinable()) t.join();
  }
};

}  // namespace

Launcher::Launcher(DeviceSpec dev) : dev_(std::move(dev)) {
  dev_.validate();
  if (dev_.l2_bytes > 0)
    l2_ = std::make_unique<L2Cache>(dev_.l2_bytes, dev_.transaction_bytes, dev_.l2_ways);
  threads_ = resolve_threads(dev_.sim_threads);
}

void Launcher::set_threads(int n) { threads_ = resolve_threads(n); }

KernelReport Launcher::launch(const std::string& name, const LaunchShape& shape,
                              const std::function<void(BlockContext&)>& body) {
  if (shape.blocks <= 0) throw std::invalid_argument("Launcher::launch: empty grid");

  const int blocks = shape.blocks;
  // The L2 is one order-sensitive LRU shared by all blocks: its hits depend
  // on the interleaving, so the documented fallback is sequential execution.
  const int workers = l2_ != nullptr ? 1 : std::min(threads_, blocks);

  std::vector<BlockOutcome> outcomes(static_cast<std::size_t>(blocks));
  auto simulate = [&](int b) {
    BlockOutcome& out = outcomes[static_cast<std::size_t>(b)];
    if (trace_ != nullptr) out.trace = std::make_unique<TraceSink>();
    BlockContext ctx(dev_, b, blocks, shape.threads_per_block);
    ctx.set_trace(out.trace.get());
    ctx.set_l2(l2_.get());
    body(ctx);
    out.counters = ctx.counters();
    out.chain = ctx.block_chain();
    out.shared_bytes = ctx.shared_bytes();
  };

  if (workers <= 1) {
    for (int b = 0; b < blocks; ++b) simulate(b);
  } else {
    std::atomic<int> next{0};
    auto drain = [&]() {
      for (;;) {
        const int b = next.fetch_add(1, std::memory_order_relaxed);
        if (b >= blocks) return;
        try {
          simulate(b);
        } catch (...) {
          outcomes[static_cast<std::size_t>(b)].error = std::current_exception();
        }
      }
    };
    {
      std::vector<std::thread> pool;
      PoolJoiner joiner{pool};
      pool.reserve(static_cast<std::size_t>(workers));
      for (int t = 0; t < workers; ++t) pool.emplace_back(drain);
    }
  }
  // Rethrow the lowest-id failure (deterministic across schedules); the
  // launcher itself — history, trace sink, stats — is untouched.
  for (const BlockOutcome& out : outcomes)
    if (out.error) std::rethrow_exception(out.error);

  // Deterministic reduction in block order: bit-identical to sequential.
  KernelReport report;
  report.name = name;
  report.shape = shape;
  double chain_sum = 0.0;
  std::size_t shared_bytes = shape.shared_bytes_per_block;
  for (BlockOutcome& out : outcomes) {
    report.counters.merge(out.counters);
    chain_sum += out.chain;
    report.max_block_chain = std::max(report.max_block_chain, out.chain);
    shared_bytes = std::max(shared_bytes, out.shared_bytes);
    if (out.trace != nullptr && trace_ != nullptr) trace_->merge_from(*out.trace);
  }
  report.mean_block_chain = chain_sum / blocks;

  LaunchShape final_shape = shape;
  final_shape.shared_bytes_per_block = shared_bytes;
  report.shape = final_shape;
  report.timing = simulate_timing(dev_, final_shape, report.total(), report.mean_block_chain);

  history_.push_back(report);
  return report;
}

double Launcher::total_microseconds() const {
  double us = 0.0;
  for (const auto& r : history_) us += r.timing.microseconds;
  return us;
}

Counters Launcher::total_counters() const {
  Counters c;
  for (const auto& r : history_) c += r.total();
  return c;
}

PhaseCounters Launcher::phase_counters() const {
  PhaseCounters p;
  for (const auto& r : history_) p.merge(r.counters);
  return p;
}

}  // namespace cfmerge::gpusim
