#include "gpusim/launcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace cfmerge::gpusim {

KernelReport Launcher::launch(const std::string& name, const LaunchShape& shape,
                              const std::function<void(BlockContext&)>& body) {
  if (shape.blocks <= 0) throw std::invalid_argument("Launcher::launch: empty grid");

  KernelReport report;
  report.name = name;
  report.shape = shape;

  double chain_sum = 0.0;
  std::size_t shared_bytes = shape.shared_bytes_per_block;
  for (int b = 0; b < shape.blocks; ++b) {
    BlockContext ctx(dev_, b, shape.blocks, shape.threads_per_block);
    ctx.set_trace(trace_);
    ctx.set_l2(l2_.get());
    body(ctx);
    report.counters.merge(ctx.counters());
    const double chain = ctx.block_chain();
    chain_sum += chain;
    report.max_block_chain = std::max(report.max_block_chain, chain);
    shared_bytes = std::max(shared_bytes, ctx.shared_bytes());
  }
  report.mean_block_chain = chain_sum / shape.blocks;

  LaunchShape final_shape = shape;
  final_shape.shared_bytes_per_block = shared_bytes;
  report.shape = final_shape;
  report.timing = simulate_timing(dev_, final_shape, report.total(), report.mean_block_chain);

  history_.push_back(report);
  return report;
}

double Launcher::total_microseconds() const {
  double us = 0.0;
  for (const auto& r : history_) us += r.timing.microseconds;
  return us;
}

Counters Launcher::total_counters() const {
  Counters c;
  for (const auto& r : history_) c += r.total();
  return c;
}

PhaseCounters Launcher::phase_counters() const {
  PhaseCounters p;
  for (const auto& r : history_) p.merge(r.counters);
  return p;
}

}  // namespace cfmerge::gpusim
