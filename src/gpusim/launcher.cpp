#include "gpusim/launcher.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>

namespace cfmerge::gpusim {

namespace {

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Resolves a requested worker count (0 = environment / default) to the
/// concrete count used by launches.  See Launcher::set_threads.
int resolve_threads(int requested) {
  if (requested < 0)
    throw std::invalid_argument("Launcher: thread count must be non-negative");
  if (requested > 0) return requested;
  if (const char* env = std::getenv("CFMERGE_SIM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
    if (n == 0 && env[0] == '0') return hardware_threads();
  }
  return 1;
}

/// What one simulated block produces, reduced into the report in block
/// order after all blocks finish.
struct BlockOutcome {
  PhaseCounters counters;
  double chain = 0.0;
  std::size_t shared_bytes = 0;
  std::uint64_t bulk_charges = 0;
  std::uint64_t lane_charges = 0;
  std::uint64_t audit_skipped = 0;
  std::unique_ptr<TraceSink> trace;  // only when a sink is attached
  std::exception_ptr error;
};

/// One unit of work for the pool: block `block` of graph node `node`.
struct WorkItem {
  int node = 0;
  int block = 0;
};

/// Joins the pool on scope exit so a throw never leaks running threads.
struct PoolJoiner {
  std::vector<std::thread>& pool;
  ~PoolJoiner() {
    for (std::thread& t : pool)
      if (t.joinable()) t.join();
  }
};

/// Simulates one block of one kernel into its private outcome slot.
void simulate_block(const DeviceSpec& dev, L2Cache* l2, MemoryAuditor* audit,
                    bool audit_skip, bool tracing, const LaunchShape& shape,
                    const KernelBody& body, int block, BlockOutcome& out) {
  if (tracing) out.trace = std::make_unique<TraceSink>();
  BlockContext ctx(dev, block, shape.blocks, shape.threads_per_block);
  ctx.set_trace(out.trace.get());
  ctx.set_l2(l2);
  ctx.set_audit(audit);
  ctx.set_audit_skip(audit_skip);
  body(ctx);
  out.counters = ctx.counters();
  out.chain = ctx.block_chain();
  out.shared_bytes = ctx.shared_bytes();
  out.bulk_charges = ctx.bulk_charges();
  out.lane_charges = ctx.lane_charges();
  out.audit_skipped = ctx.audit_skipped();
}

/// Deterministic reduction of one node's block outcomes in block order:
/// bit-identical to sequential execution for every worker count.  Does NOT
/// touch the trace sink or the history — committing is the caller's job.
KernelReport reduce_node(const DeviceSpec& dev, const std::string& name,
                         const LaunchShape& shape, const std::vector<BlockOutcome>& outcomes) {
  KernelReport report;
  report.name = name;
  report.shape = shape;
  double chain_sum = 0.0;
  std::size_t shared_bytes = shape.shared_bytes_per_block;
  for (const BlockOutcome& out : outcomes) {
    report.counters.merge(out.counters);
    chain_sum += out.chain;
    report.max_block_chain = std::max(report.max_block_chain, out.chain);
    shared_bytes = std::max(shared_bytes, out.shared_bytes);
  }
  report.mean_block_chain = chain_sum / static_cast<double>(outcomes.size());

  LaunchShape final_shape = shape;
  final_shape.shared_bytes_per_block = shared_bytes;
  report.shape = final_shape;
  report.timing = simulate_timing(dev, final_shape, report.total(), report.mean_block_chain);
  return report;
}

}  // namespace

Launcher::Launcher(DeviceSpec dev) : dev_(std::move(dev)) {
  dev_.validate();
  if (dev_.l2_bytes > 0)
    l2_ = std::make_unique<L2Cache>(dev_.l2_bytes, dev_.transaction_bytes, dev_.l2_ways);
  threads_ = resolve_threads(dev_.sim_threads);
}

void Launcher::set_threads(int n) { threads_ = resolve_threads(n); }

KernelReport Launcher::launch(const std::string& name, const LaunchShape& shape,
                              const std::function<void(BlockContext&)>& body) {
  if (shape.blocks <= 0) throw std::invalid_argument("Launcher::launch: empty grid");
  KernelGraph graph;
  graph.add(name, shape, body);
  return run(graph, GraphExec::Serial).kernels.front();
}

GraphReport Launcher::run(const KernelGraph& graph, GraphExec mode) {
  GraphReport out;
  if (graph.empty()) return out;
  const std::vector<KernelNode>& nodes = graph.nodes();
  const std::vector<int> level = graph.levels();
  out.levels = 1 + *std::max_element(level.begin(), level.end());

  // Private per-node, per-block outcomes; nothing is committed to the
  // launcher (history, trace sink, stats) until every node finished.
  std::vector<std::vector<BlockOutcome>> outcomes(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    outcomes[i].resize(static_cast<std::size_t>(nodes[i].shape.blocks));

  const bool tracing = trace_ != nullptr;
  auto simulate = [&](const WorkItem& it) {
    const auto i = static_cast<std::size_t>(it.node);
    simulate_block(dev_, l2_.get(), audit_, audit_skip_, tracing, nodes[i].shape,
                   nodes[i].body, it.block,
                   outcomes[i][static_cast<std::size_t>(it.block)]);
  };

  // The L2 is one order-sensitive LRU shared by all blocks: its hits depend
  // on the interleaving, so the documented fallback is sequential execution.
  const int pool_size = l2_ != nullptr ? 1 : threads_;

  // Runs a list of mutually independent work items.  Sequentially the first
  // exception propagates directly; on the pool all items are drained and the
  // earliest (enqueue id, block id) failure is rethrown after the join.
  // Either way the launcher commits nothing on a throw.
  auto run_items = [&](const std::vector<WorkItem>& items) {
    const int workers = std::min<int>(pool_size, static_cast<int>(items.size()));
    if (workers <= 1) {
      for (const WorkItem& it : items) simulate(it);
      return;
    }
    std::atomic<std::size_t> next{0};
    auto drain = [&]() {
      for (;;) {
        const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= items.size()) return;
        try {
          simulate(items[k]);
        } catch (...) {
          outcomes[static_cast<std::size_t>(items[k].node)]
                  [static_cast<std::size_t>(items[k].block)]
                      .error = std::current_exception();
        }
      }
    };
    {
      std::vector<std::thread> pool;
      PoolJoiner joiner{pool};
      pool.reserve(static_cast<std::size_t>(workers));
      for (int t = 0; t < workers; ++t) pool.emplace_back(drain);
    }
    for (const WorkItem& it : items) {
      const std::exception_ptr& err = outcomes[static_cast<std::size_t>(it.node)]
                                              [static_cast<std::size_t>(it.block)]
                                                  .error;
      if (err) std::rethrow_exception(err);
    }
  };

  if (mode == GraphExec::Serial || pool_size <= 1) {
    // One kernel at a time in enqueue order — the pre-graph launch cadence
    // (each node's blocks still use the pool).
    for (int i = 0; i < graph.size(); ++i) {
      std::vector<WorkItem> items;
      items.reserve(static_cast<std::size_t>(nodes[static_cast<std::size_t>(i)].shape.blocks));
      for (int b = 0; b < nodes[static_cast<std::size_t>(i)].shape.blocks; ++b)
        items.push_back({i, b});
      run_items(items);
    }
  } else {
    // Wavefront execution: all blocks of all kernels of one dependency level
    // form a single flat work list for the pool.
    for (int lvl = 0; lvl < out.levels; ++lvl) {
      std::vector<WorkItem> items;
      for (int i = 0; i < graph.size(); ++i) {
        if (level[static_cast<std::size_t>(i)] != lvl) continue;
        for (int b = 0; b < nodes[static_cast<std::size_t>(i)].shape.blocks; ++b)
          items.push_back({i, b});
      }
      run_items(items);
    }
  }

  // Reduce every node in enqueue order (may evaluate timing; still nothing
  // committed), then evaluate the overlap model.
  out.kernels.reserve(nodes.size());
  out.finish_microseconds.assign(nodes.size(), 0.0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    KernelReport report = reduce_node(dev_, nodes[i].name, nodes[i].shape, outcomes[i]);
    out.serial_microseconds += report.timing.microseconds;
    double start = 0.0;
    for (const NodeId d : nodes[i].deps)
      start = std::max(start, out.finish_microseconds[static_cast<std::size_t>(d)]);
    out.finish_microseconds[i] = start + report.timing.microseconds;
    out.makespan_microseconds =
        std::max(out.makespan_microseconds, out.finish_microseconds[i]);
    out.kernels.push_back(std::move(report));
  }

  // Commit: merge traces and append history in enqueue order — the event
  // stream and history are identical to serial launch-by-launch execution.
  if (trace_ != nullptr)
    for (const std::vector<BlockOutcome>& node_outcomes : outcomes)
      for (const BlockOutcome& b : node_outcomes)
        if (b.trace != nullptr) trace_->merge_from(*b.trace);
  for (const std::vector<BlockOutcome>& node_outcomes : outcomes)
    for (const BlockOutcome& b : node_outcomes) {
      bulk_charges_ += b.bulk_charges;
      lane_charges_ += b.lane_charges;
      audit_skipped_accesses_ += b.audit_skipped;
    }
  history_.insert(history_.end(), out.kernels.begin(), out.kernels.end());
  return out;
}

double Launcher::total_microseconds() const {
  double us = 0.0;
  for (const auto& r : history_) us += r.timing.microseconds;
  return us;
}

Counters Launcher::total_counters() const {
  Counters c;
  for (const auto& r : history_) c += r.total();
  return c;
}

PhaseCounters Launcher::phase_counters() const {
  PhaseCounters p;
  for (const auto& r : history_) p.merge(r.counters);
  return p;
}

}  // namespace cfmerge::gpusim
