#include "gpusim/timing.hpp"

#include <algorithm>
#include <stdexcept>

namespace cfmerge::gpusim {

KernelTiming simulate_timing(const DeviceSpec& dev, const LaunchShape& shape,
                             const Counters& total, double mean_block_chain) {
  if (shape.blocks <= 0) throw std::invalid_argument("simulate_timing: blocks must be positive");

  KernelTiming t;
  t.occupancy = compute_occupancy(dev, shape.threads_per_block, shape.shared_bytes_per_block,
                                  shape.regs_per_thread);
  if (t.occupancy.blocks_per_sm == 0)
    throw std::invalid_argument("simulate_timing: block does not fit on an SM");

  const int resident_blocks = dev.num_sms * t.occupancy.blocks_per_sm;
  t.waves = static_cast<int>((shape.blocks + resident_blocks - 1) / resident_blocks);

  t.compute_bound = static_cast<double>(total.warp_instructions) /
                    (static_cast<double>(dev.issue_width) * dev.num_sms);
  t.shared_bound = static_cast<double>(total.shared_cycles) / dev.num_sms;
  t.bw_bound = static_cast<double>(total.gmem_bytes) / dev.dram_bytes_per_cycle;
  t.work_bound = t.compute_bound + t.shared_bound + t.bw_bound;
  t.latency_bound = static_cast<double>(t.waves) * mean_block_chain;

  t.cycles = dev.launch_overhead_cycles + std::max(t.work_bound, t.latency_bound);
  if (t.latency_bound >= t.work_bound) {
    t.limiter = "latency";
  } else if (t.compute_bound >= t.shared_bound && t.compute_bound >= t.bw_bound) {
    t.limiter = "compute";
  } else if (t.shared_bound >= t.bw_bound) {
    t.limiter = "shared";
  } else {
    t.limiter = "bw";
  }
  t.microseconds = dev.cycles_to_us(t.cycles);
  return t;
}

}  // namespace cfmerge::gpusim
