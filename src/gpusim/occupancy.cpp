#include "gpusim/occupancy.hpp"

#include <algorithm>
#include <stdexcept>

namespace cfmerge::gpusim {

OccupancyResult compute_occupancy(const DeviceSpec& dev, int threads_per_block,
                                  std::size_t shared_bytes, int regs_per_thread) {
  if (threads_per_block <= 0 || threads_per_block % dev.warp_size != 0)
    throw std::invalid_argument(
        "compute_occupancy: threads_per_block must be a positive multiple of warp_size");
  if (regs_per_thread < 0) throw std::invalid_argument("compute_occupancy: negative registers");

  OccupancyResult r;
  const int by_threads = dev.max_threads_per_sm / threads_per_block;
  const int by_blocks = dev.max_blocks_per_sm;
  const int by_shared =
      shared_bytes == 0 ? by_blocks
                        : static_cast<int>(dev.shared_bytes_per_sm / shared_bytes);
  const std::int64_t block_regs =
      static_cast<std::int64_t>(regs_per_thread) * threads_per_block;
  const int by_regs =
      block_regs == 0 ? by_blocks : static_cast<int>(dev.registers_per_sm / block_regs);

  r.blocks_per_sm = std::min({by_threads, by_blocks, by_shared, by_regs});
  if (r.blocks_per_sm <= 0) {
    r.blocks_per_sm = 0;
    r.limiter = "none";
    return r;
  }
  if (r.blocks_per_sm == by_threads)
    r.limiter = "threads";
  else if (r.blocks_per_sm == by_shared)
    r.limiter = "shared";
  else if (r.blocks_per_sm == by_regs)
    r.limiter = "registers";
  else
    r.limiter = "blocks";

  r.warps_per_sm = r.blocks_per_sm * (threads_per_block / dev.warp_size);
  r.occupancy = static_cast<double>(r.warps_per_sm) / dev.max_warps_per_sm();
  return r;
}

}  // namespace cfmerge::gpusim
