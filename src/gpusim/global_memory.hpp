// Coalescing model for global memory.
//
// A warp-wide global access is split into one transaction per distinct
// `transaction_bytes`-aligned segment touched by the active lanes (the
// standard CUDA coalescing rule).  Fully coalesced access to contiguous
// 4-byte elements by a 32-lane warp therefore costs one 128-byte
// transaction; a stride-32 access costs 32.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "gpusim/shared_memory.hpp"  // kInactiveLane, kMaxLanes

namespace cfmerge::gpusim {

struct GlobalAccessCost {
  int transactions = 0;
  std::int64_t bytes = 0;
  int active_lanes = 0;
};

/// Cost of one warp-wide global access.  `byte_addrs` holds one byte address
/// per lane (use gpusim::kInactiveLane from shared_memory.hpp for idle
/// lanes); `elem_bytes` is the size of each element actually transferred.
///
/// Defined inline: one call per warp-wide global access puts this on the
/// simulator's hot path next to shared_access_cost.
[[nodiscard]] inline GlobalAccessCost global_access_cost(
    std::span<const std::int64_t> byte_addrs, int elem_bytes, int transaction_bytes) {
  if (elem_bytes <= 0 || transaction_bytes <= 0)
    throw std::invalid_argument("global_access_cost: sizes must be positive");
  if (byte_addrs.size() > static_cast<std::size_t>(kMaxLanes))
    throw std::invalid_argument("global_access_cost: too many lanes");

  // Expand into a fixed stack array, tracking whether the segment stream
  // comes out already sorted — it does for every coalesced or
  // positive-strided access, which skips the sort entirely.  Transaction
  // sizes are powers of two on every real device, turning the per-lane
  // 64-bit divisions into shifts (addresses are non-negative).
  const int tshift = (transaction_bytes & (transaction_bytes - 1)) == 0
                         ? std::countr_zero(static_cast<unsigned>(transaction_bytes))
                         : -1;
  std::array<std::int64_t, 2 * kMaxLanes> segments;
  int n = 0;
  bool sorted = true;
  std::int64_t prev = std::numeric_limits<std::int64_t>::min();
  GlobalAccessCost cost;
  for (const std::int64_t a : byte_addrs) {
    if (a == kInactiveLane) continue;
    assert(a >= 0 && "global byte address must be non-negative");
    ++cost.active_lanes;
    cost.bytes += elem_bytes;
    // An element may straddle a segment boundary; count both segments.
    const std::int64_t first = tshift >= 0 ? a >> tshift : a / transaction_bytes;
    const std::int64_t last = tshift >= 0 ? (a + elem_bytes - 1) >> tshift
                                          : (a + elem_bytes - 1) / transaction_bytes;
    for (std::int64_t s = first; s <= last; ++s) {
      sorted &= s >= prev;
      prev = s;
      segments[static_cast<std::size_t>(n++)] = s;
    }
  }
  if (n == 0) return cost;
  if (!sorted) std::sort(segments.begin(), segments.begin() + n);
  int transactions = 1;
  for (int i = 1; i < n; ++i)
    transactions += segments[static_cast<std::size_t>(i)] !=
                    segments[static_cast<std::size_t>(i - 1)];
  cost.transactions = transactions;
  return cost;
}

/// The distinct transaction segments (segment index = byte / transaction
/// size) a warp access touches, appended to `out` (cleared first).  Used by
/// the L2 cache model.
void global_access_segments(std::span<const std::int64_t> byte_addrs, int elem_bytes,
                            int transaction_bytes, std::vector<std::int64_t>& out);

}  // namespace cfmerge::gpusim
