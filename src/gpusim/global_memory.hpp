// Coalescing model for global memory.
//
// A warp-wide global access is split into one transaction per distinct
// `transaction_bytes`-aligned segment touched by the active lanes (the
// standard CUDA coalescing rule).  Fully coalesced access to contiguous
// 4-byte elements by a 32-lane warp therefore costs one 128-byte
// transaction; a stride-32 access costs 32.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cfmerge::gpusim {

struct GlobalAccessCost {
  int transactions = 0;
  std::int64_t bytes = 0;
  int active_lanes = 0;
};

/// Cost of one warp-wide global access.  `byte_addrs` holds one byte address
/// per lane (use gpusim::kInactiveLane from shared_memory.hpp for idle
/// lanes); `elem_bytes` is the size of each element actually transferred.
[[nodiscard]] GlobalAccessCost global_access_cost(std::span<const std::int64_t> byte_addrs,
                                                  int elem_bytes, int transaction_bytes);

/// The distinct transaction segments (segment index = byte / transaction
/// size) a warp access touches, appended to `out` (cleared first).  Used by
/// the L2 cache model.
void global_access_segments(std::span<const std::int64_t> byte_addrs, int elem_bytes,
                            int transaction_bytes, std::vector<std::int64_t>& out);

}  // namespace cfmerge::gpusim
