// Event counters collected while simulating a kernel.
//
// Counters play the role of `nvprof` hardware counters in the paper's
// methodology: `bank_conflicts` corresponds to shared_ld/st_bank_conflict,
// `gmem_transactions` to gld/gst_transactions, and so on.  Counters are
// aggregated per named phase (e.g. "load", "search", "merge", "store") so
// experiments can attribute conflicts to pipeline stages.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cfmerge::gpusim {

struct Counters {
  /// Warp-wide ALU/control instructions issued.
  std::uint64_t warp_instructions = 0;
  /// Warp-wide shared memory accesses (each serves up to w lanes).
  std::uint64_t shared_accesses = 0;
  /// Cycles spent on the SM shared memory unit: one per access plus one per
  /// bank-conflict replay.
  std::uint64_t shared_cycles = 0;
  /// Total bank conflicts (= shared_cycles - shared_accesses).
  std::uint64_t bank_conflicts = 0;
  /// Warp-wide global memory requests.
  std::uint64_t gmem_requests = 0;
  /// Coalesced transactions those requests split into.
  std::uint64_t gmem_transactions = 0;
  /// Bytes moved to/from global memory.  With the L2 model enabled this is
  /// DRAM traffic (transaction_bytes per L2 miss); without it, the
  /// requested element bytes.
  std::uint64_t gmem_bytes = 0;
  /// L2 cache hits/misses (0 unless the device enables the L2 model).
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  /// Block-wide barriers executed.
  std::uint64_t barriers = 0;

  Counters& operator+=(const Counters& o);
  [[nodiscard]] Counters operator+(const Counters& o) const;
  bool operator==(const Counters&) const = default;

  /// Average bank conflicts per shared access (0 when there were none).
  [[nodiscard]] double conflicts_per_access() const {
    return shared_accesses == 0
               ? 0.0
               : static_cast<double>(bank_conflicts) / static_cast<double>(shared_accesses);
  }
};

/// Counters broken down by phase name, preserving first-use order.
class PhaseCounters {
 public:
  /// Counters for `name`, created zeroed on first use.
  Counters& phase(std::string_view name);
  /// Index of `name`'s slot, created zeroed on first use.  Intern once,
  /// then switch in O(1) with `by_index` — the hot-path contract
  /// BlockContext::PhaseRef builds on.  Indices are stable (slots are only
  /// ever appended).
  int intern(std::string_view name);
  /// The counters at a previously interned index.
  [[nodiscard]] Counters& by_index(int idx) {
    return phases_[static_cast<std::size_t>(idx)].second;
  }
  [[nodiscard]] const std::string& name_of(int idx) const {
    return phases_[static_cast<std::size_t>(idx)].first;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, Counters>>& phases() const {
    return phases_;
  }
  [[nodiscard]] Counters total() const;
  void merge(const PhaseCounters& o);
  /// Equal iff the same phases appear in the same order with equal counters.
  bool operator==(const PhaseCounters&) const = default;

 private:
  std::vector<std::pair<std::string, Counters>> phases_;
};

}  // namespace cfmerge::gpusim
