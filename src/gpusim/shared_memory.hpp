// Bank conflict model for shared memory.
//
// Shared memory is organized into `w` banks; element address `a` resides in
// bank `a mod w` (the paper's Section 2 layout: a w-row matrix in
// column-major order).  When the lanes of a warp access shared memory
// simultaneously, the access is replayed once per *distinct* address in the
// most contended bank; lanes reading the same address are served by a single
// broadcast (paper footnote 4).
//
//   cost(access)      = max over banks b of |distinct addresses in b|  (>= 1)
//   conflicts(access) = cost - 1
#pragma once

#include <cstdint>
#include <span>

namespace cfmerge::gpusim {

/// Sentinel for a lane that does not participate in an access.
inline constexpr std::int64_t kInactiveLane = -1;

struct SharedAccessCost {
  /// Cycles the SM shared unit is busy (1 for a conflict-free access).
  int cycles = 0;
  /// Extra replays caused by bank conflicts (cycles - 1, or 0 if no lane
  /// was active).
  int conflicts = 0;
  /// Number of active lanes.
  int active_lanes = 0;
};

/// Computes the cost of one warp-wide shared access.  `addrs` holds one
/// element address per lane (kInactiveLane for idle lanes); `banks` is the
/// number of banks (== warp size).  Addresses must be non-negative.
[[nodiscard]] SharedAccessCost shared_access_cost(std::span<const std::int64_t> addrs,
                                                  int banks);

/// Per-bank serialization degrees of one warp access: result[b] = number of
/// distinct addresses in bank b.  Used by visualization harnesses and tests.
[[nodiscard]] std::span<const int> shared_access_degrees(std::span<const std::int64_t> addrs,
                                                         int banks,
                                                         std::span<int> scratch);

}  // namespace cfmerge::gpusim
