// Bank conflict model for shared memory.
//
// Shared memory is organized into `w` banks; element address `a` resides in
// bank `a mod w` (the paper's Section 2 layout: a w-row matrix in
// column-major order).  When the lanes of a warp access shared memory
// simultaneously, the access is replayed once per *distinct* address in the
// most contended bank; lanes reading the same address are served by a single
// broadcast (paper footnote 4).
//
//   cost(access)      = max over banks b of |distinct addresses in b|  (>= 1)
//   conflicts(access) = cost - 1
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>

namespace cfmerge::gpusim {

/// Sentinel for a lane that does not participate in an access.
inline constexpr std::int64_t kInactiveLane = -1;

/// Warps wider than this are not supported (all real GPUs use w <= 64);
/// the accounting hot path sizes its fixed scratch arrays off it.
inline constexpr int kMaxLanes = 64;

struct SharedAccessCost {
  /// Cycles the SM shared unit is busy (1 for a conflict-free access).
  int cycles = 0;
  /// Extra replays caused by bank conflicts (cycles - 1, or 0 if no lane
  /// was active).
  int conflicts = 0;
  /// Number of active lanes.
  int active_lanes = 0;
};

/// Computes the cost of one warp-wide shared access.  `addrs` holds one
/// element address per lane (kInactiveLane for idle lanes); `banks` is the
/// number of banks (== warp size).  Addresses must be non-negative.
///
/// `scattered_hint` is a pure performance hint from call sites whose
/// addresses are data dependent (search probes, sequential merges): it skips
/// the conflict-free screening pass — which such accesses almost never
/// satisfy — and goes straight to the per-bank counting.  The result is
/// identical either way.
///
/// Defined inline: this is the single hottest function of the simulator
/// (one call per warp-wide shared access), and inlining it into
/// BlockContext::charge_shared removes the call and span-passing overhead.
[[nodiscard]] inline SharedAccessCost shared_access_cost(
    std::span<const std::int64_t> addrs, int banks, bool scattered_hint = false) {
  if (banks <= 0 || banks > kMaxLanes)
    throw std::invalid_argument("shared_access_cost: bank count out of range");
  if (addrs.size() > static_cast<std::size_t>(kMaxLanes))
    throw std::invalid_argument("shared_access_cost: too many lanes");

  // Pass 1 — O(w), no sorting and no per-bank array: a 64-bit occupancy
  // bitmask over the banks (banks <= kMaxLanes = 64).  Every real device
  // has a power-of-two bank count, turning the modulo into a mask.  The
  // loop body is four independent associative reductions (add / min / max /
  // or) with no cross-lane dependency chain, so the iterations pipeline —
  // and can vectorize — instead of serializing on a carried bitmask.
  // "No bank collision" falls out afterwards as popcount(seen) == active:
  // every active lane sets exactly one bit, so the counts match iff all
  // active lanes landed in distinct banks.
  const std::int64_t mask = (banks & (banks - 1)) == 0 ? banks - 1 : 0;
  SharedAccessCost cost;
  if (!scattered_hint) {
  std::uint64_t seen = 0;
  // Addresses are >= 0 and the idle sentinel is -1: compared as unsigned,
  // idle lanes become huge and never win the min; compared as signed they
  // never win the max.  Both reductions run unconditionally on every lane.
  std::uint64_t mn_u = std::numeric_limits<std::uint64_t>::max();
  std::int64_t mx = std::numeric_limits<std::int64_t>::min();
  int active = 0;
  if (mask != 0) {
    for (const std::int64_t a : addrs) {
      assert(a == kInactiveLane || a >= 0);
      const std::uint64_t act = a != kInactiveLane;
      active += static_cast<int>(act);
      mn_u = std::min(mn_u, static_cast<std::uint64_t>(a));
      mx = std::max(mx, a);
      // Inactive lanes contribute a zero bit (act == 0); a & mask is then
      // harmless garbage that never reaches `seen`.
      seen |= act << static_cast<unsigned>(a & mask);
    }
  } else {
    for (const std::int64_t a : addrs) {
      if (a == kInactiveLane) continue;
      assert(a >= 0 && "shared address must be non-negative");
      ++active;
      mn_u = std::min(mn_u, static_cast<std::uint64_t>(a));
      mx = std::max(mx, a);
      seen |= std::uint64_t{1} << static_cast<unsigned>(a % banks);
    }
  }
  cost.active_lanes = active;
  if (active == 0) return cost;

  // Fast path (the common case for every conflict-free kernel): no bank is
  // hit by two lanes, or all lanes broadcast one address (min == max) —
  // one cycle.
  if (std::popcount(seen) == active || static_cast<std::int64_t>(mn_u) == mx) {
    cost.cycles = 1;
    return cost;
  }
  }

  // General path: one pass with per-bank chains threaded through the lane
  // indices — no counting sort and no per-bank zero-init (`used` gates the
  // first touch of each bank).  Each lane walks its bank's chain of
  // previously seen *distinct* addresses (same-address lanes are served by
  // one broadcast); the walk is linear in the per-bank degree, which the
  // replay cost this function is computing already bounds.
  std::array<int, kMaxLanes> head;  // lane index of each bank's chain head
  std::array<int, kMaxLanes> next;  // next lane in the same bank's chain
  std::array<int, kMaxLanes> cnt;   // distinct addresses per bank
  std::uint64_t used = 0;
  int max_degree = 1;
  int chain_active = 0;
  const int n = static_cast<int>(addrs.size());
  for (int i = 0; i < n; ++i) {
    const std::int64_t a = addrs[static_cast<std::size_t>(i)];
    if (a == kInactiveLane) continue;
    assert(a >= 0 && "shared address must be non-negative");
    ++chain_active;
    const auto b = static_cast<std::size_t>(mask != 0 ? (a & mask) : (a % banks));
    const std::uint64_t bbit = std::uint64_t{1} << b;
    if ((used & bbit) == 0) {
      used |= bbit;
      head[b] = i;
      next[static_cast<std::size_t>(i)] = -1;
      cnt[b] = 1;
      continue;
    }
    int j = head[b];
    while (j != -1 && addrs[static_cast<std::size_t>(j)] != a)
      j = next[static_cast<std::size_t>(j)];
    if (j == -1) {
      next[static_cast<std::size_t>(i)] = head[b];
      head[b] = i;
      max_degree = std::max(max_degree, ++cnt[b]);
    }
  }
  cost.active_lanes = chain_active;
  if (chain_active == 0) return cost;  // only reachable via scattered_hint
  cost.cycles = max_degree;
  cost.conflicts = max_degree - 1;
  return cost;
}

/// Per-bank serialization degrees of one warp access: result[b] = number of
/// distinct addresses in bank b.  Shares the per-bank chain machinery of
/// shared_access_cost (banks <= kMaxLanes, like every charge path).  Used by
/// visualization harnesses and tests.
[[nodiscard]] std::span<const int> shared_access_degrees(std::span<const std::int64_t> addrs,
                                                         int banks,
                                                         std::span<int> scratch);

}  // namespace cfmerge::gpusim
