// Bank conflict model for shared memory.
//
// Shared memory is organized into `w` banks; element address `a` resides in
// bank `a mod w` (the paper's Section 2 layout: a w-row matrix in
// column-major order).  When the lanes of a warp access shared memory
// simultaneously, the access is replayed once per *distinct* address in the
// most contended bank; lanes reading the same address are served by a single
// broadcast (paper footnote 4).
//
//   cost(access)      = max over banks b of |distinct addresses in b|  (>= 1)
//   conflicts(access) = cost - 1
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <type_traits>

namespace cfmerge::gpusim {

/// Sentinel for a lane that does not participate in an access.
inline constexpr std::int64_t kInactiveLane = -1;

/// Warps wider than this are not supported (all real GPUs use w <= 64);
/// the accounting hot path sizes its fixed scratch arrays off it.
inline constexpr int kMaxLanes = 64;

struct SharedAccessCost {
  /// Cycles the SM shared unit is busy (1 for a conflict-free access).
  int cycles = 0;
  /// Extra replays caused by bank conflicts (cycles - 1, or 0 if no lane
  /// was active).
  int conflicts = 0;
  /// Number of active lanes.
  int active_lanes = 0;
};

namespace detail {

/// The cost computation, templated on the bank count.  kBanks > 0 bakes the
/// count into the instruction stream: the bank modulo becomes a compile-time
/// mask (every real device is power-of-two) and the screening loop gets a
/// fixed trip count when the span covers exactly one warp, so the four
/// associative reductions (add / min / max / or) autovectorize.  kBanks == 0
/// is the runtime fallback — the *same* code path with `banks` as a runtime
/// value, so the non-power-of-two case cannot drift from the masked one:
/// the unsigned modulo maps the -1 idle sentinel to well-defined garbage in
/// [0, banks) whose contribution `act == 0` zeroes out.
template <int kBanks>
[[nodiscard]] inline SharedAccessCost shared_access_cost_impl(
    std::span<const std::int64_t> addrs, int banks, bool scattered_hint) {
  const int nb = kBanks > 0 ? kBanks : banks;
  const auto bank_of = [nb](std::int64_t a) {
    return static_cast<std::uint64_t>(a) % static_cast<std::uint64_t>(nb);
  };

  SharedAccessCost cost;
  const std::size_t n = addrs.size();
  if (!scattered_hint) {
    // Pass 1 — O(w) screen over a 64-bit bank-occupancy bitmask
    // (banks <= kMaxLanes = 64).  "No bank collision" falls out afterwards
    // as popcount(seen) == active: every active lane sets exactly one bit,
    // so the counts match iff all active lanes landed in distinct banks.
    std::uint64_t seen = 0;
    // Addresses are >= 0 and the idle sentinel is -1: compared as unsigned,
    // idle lanes become huge and never win the min; compared as signed they
    // never win the max.  All reductions run unconditionally on every lane.
    std::uint64_t mn_u = std::numeric_limits<std::uint64_t>::max();
    std::int64_t mx = std::numeric_limits<std::int64_t>::min();
    int active = 0;
    const auto screen = [&](auto count) {
      for (std::size_t l = 0; l < static_cast<std::size_t>(count); ++l) {
        const std::int64_t a = addrs[l];
        assert(a == kInactiveLane || a >= 0);
        const std::uint64_t act = a != kInactiveLane;
        active += static_cast<int>(act);
        mn_u = std::min(mn_u, static_cast<std::uint64_t>(a));
        mx = std::max(mx, a);
        seen |= act << bank_of(a);
      }
    };
    if constexpr (kBanks > 0) {
      // One full warp (the hot shape): fixed trip count for the vectorizer.
      if (n == static_cast<std::size_t>(kBanks))
        screen(std::integral_constant<int, kBanks>{});
      else
        screen(n);
    } else {
      screen(n);
    }
    cost.active_lanes = active;
    if (active == 0) return cost;

    // Fast path (the common case for every conflict-free kernel): no bank
    // is hit by two lanes, or all lanes broadcast one address (min == max)
    // — one cycle.
    if (std::popcount(seen) == active || static_cast<std::int64_t>(mn_u) == mx) {
      cost.cycles = 1;
      return cost;
    }
  }

  // General path, first attempt: branch-free bitmap dedup.  Scattered
  // probe addresses (merge-path searches, sequential merges) are data
  // dependent, so the per-bank chain walk below suffers an unpredictable
  // branch per lane; marking "address already seen" in a 64K-bit map makes
  // the whole per-lane loop straight-line selects (~2.5x faster per call on
  // the simulator's profile).  The map is thread_local and lazily wiped by
  // re-walking the active lanes, so its all-zero invariant holds across
  // calls.  Addresses at or beyond the 1<<16 domain (shared tiles that
  // large never occur in the shipped kernels) fall through to the chains.
  {
    constexpr std::int64_t kDomain = std::int64_t{1} << 16;
    std::array<std::int32_t, kMaxLanes> act;
    std::size_t m = 0;
    bool in_range = true;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t a = addrs[i];
      assert(a == kInactiveLane || a >= 0);
      act[m] = static_cast<std::int32_t>(a);
      m += static_cast<std::size_t>(a != kInactiveLane);
      in_range &= a < kDomain;
    }
    if (in_range) {
      cost.active_lanes = static_cast<int>(m);
      if (m == 0) return cost;
      static thread_local std::uint64_t seen_bm[kDomain / 64];  // zero-init
      std::array<std::int8_t, kMaxLanes> cnt;
      cnt.fill(0);
      int max_degree = 1;
      for (std::size_t i = 0; i < m; ++i) {
        const auto a = static_cast<std::uint32_t>(act[i]);
        const std::uint64_t bit = std::uint64_t{1} << (a & 63u);
        const std::uint64_t word = seen_bm[a >> 6];
        const int fresh = (word & bit) == 0;
        seen_bm[a >> 6] = word | bit;
        const auto b = static_cast<std::size_t>(bank_of(a));
        const int c = cnt[b] + fresh;
        cnt[b] = static_cast<std::int8_t>(c);
        max_degree = c > max_degree ? c : max_degree;
      }
      for (std::size_t i = 0; i < m; ++i)
        seen_bm[static_cast<std::uint32_t>(act[i]) >> 6] = 0;
      cost.cycles = max_degree;
      cost.conflicts = max_degree - 1;
      return cost;
    }
  }

  // General path, fallback: one pass with per-bank chains threaded through
  // the lane indices — no counting sort and no per-bank zero-init (`used`
  // gates the first touch of each bank).  Each lane walks its bank's chain
  // of previously seen *distinct* addresses (same-address lanes are served
  // by one broadcast); the walk is linear in the per-bank degree, which the
  // replay cost this function is computing already bounds.
  std::array<int, kMaxLanes> head;  // lane index of each bank's chain head
  std::array<int, kMaxLanes> next;  // next lane in the same bank's chain
  std::array<int, kMaxLanes> cnt;   // distinct addresses per bank
  std::uint64_t used = 0;
  int max_degree = 1;
  int chain_active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t a = addrs[i];
    if (a == kInactiveLane) continue;
    assert(a >= 0 && "shared address must be non-negative");
    ++chain_active;
    const auto b = static_cast<std::size_t>(bank_of(a));
    const std::uint64_t bbit = std::uint64_t{1} << b;
    if ((used & bbit) == 0) {
      used |= bbit;
      head[b] = static_cast<int>(i);
      next[i] = -1;
      cnt[b] = 1;
      continue;
    }
    int j = head[b];
    while (j != -1 && addrs[static_cast<std::size_t>(j)] != a)
      j = next[static_cast<std::size_t>(j)];
    if (j == -1) {
      next[i] = head[b];
      head[b] = static_cast<int>(i);
      max_degree = std::max(max_degree, ++cnt[b]);
    }
  }
  cost.active_lanes = chain_active;
  if (chain_active == 0) return cost;  // only reachable via scattered_hint
  cost.cycles = max_degree;
  cost.conflicts = max_degree - 1;
  return cost;
}

}  // namespace detail

/// Computes the cost of one warp-wide shared access.  `addrs` holds one
/// element address per lane (kInactiveLane for idle lanes); `banks` is the
/// number of banks (== warp size).  Addresses must be non-negative.
///
/// `scattered_hint` is a pure performance hint from call sites whose
/// addresses are data dependent (search probes, sequential merges): it skips
/// the conflict-free screening pass — which such accesses almost never
/// satisfy — and goes straight to the per-bank counting.  The result is
/// identical either way.
///
/// Defined inline: this is the single hottest function of the simulator
/// (one call per warp-wide shared access), and inlining it into
/// BlockContext::charge_shared removes the call and span-passing overhead.
/// The dispatch specializes the real-device bank counts at compile time
/// (w = 32 is the paper's device; 4..64 cover DeviceSpec::tiny in tests).
[[nodiscard]] inline SharedAccessCost shared_access_cost(
    std::span<const std::int64_t> addrs, int banks, bool scattered_hint = false) {
  if (banks <= 0 || banks > kMaxLanes)
    throw std::invalid_argument("shared_access_cost: bank count out of range");
  if (addrs.size() > static_cast<std::size_t>(kMaxLanes))
    throw std::invalid_argument("shared_access_cost: too many lanes");
  switch (banks) {
    case 32: return detail::shared_access_cost_impl<32>(addrs, banks, scattered_hint);
    case 4: return detail::shared_access_cost_impl<4>(addrs, banks, scattered_hint);
    case 8: return detail::shared_access_cost_impl<8>(addrs, banks, scattered_hint);
    case 16: return detail::shared_access_cost_impl<16>(addrs, banks, scattered_hint);
    case 64: return detail::shared_access_cost_impl<64>(addrs, banks, scattered_hint);
    default: return detail::shared_access_cost_impl<0>(addrs, banks, scattered_hint);
  }
}

/// Per-bank serialization degrees of one warp access: result[b] = number of
/// distinct addresses in bank b.  Shares the per-bank chain machinery of
/// shared_access_cost (banks <= kMaxLanes, like every charge path).  Used by
/// visualization harnesses and tests.
[[nodiscard]] std::span<const int> shared_access_degrees(std::span<const std::int64_t> addrs,
                                                         int banks,
                                                         std::span<int> scratch);

}  // namespace cfmerge::gpusim
