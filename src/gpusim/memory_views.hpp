// Typed data views that move data and charge simulation costs together.
//
//  * SharedTile<T>  — a block's shared memory allocation.  Warp-wide
//    gather/scatter go through the bank-conflict model; `raw()` provides
//    uncharged access for test setup and verification.
//  * GlobalView<T>  — a window onto a "global memory" host buffer.  Warp-wide
//    access goes through the coalescing model.
//
// All warp-wide operations take one element index per lane;
// gpusim::kInactiveLane marks idle lanes.
#pragma once

#include <cassert>
#include <type_traits>
#include <span>
#include <vector>

#include "gpusim/block_context.hpp"
#include "gpusim/shared_memory.hpp"

namespace cfmerge::gpusim {

template <typename T>
class SharedTile {
 public:
  SharedTile(BlockContext& ctx, std::size_t n)
      : ctx_(&ctx), data_(n), tile_id_(ctx.next_tile_id()) {
    ctx.add_shared_bytes(n * sizeof(T));
    if (auto* au = ctx.audit()) au->on_shared_alloc(ctx.block_id(), tile_id_, n);
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::span<T> raw() {
    // The raw escape hatch bypasses the access model; the shadow checker
    // must treat the whole tile as externally initialized from here on.
    if (auto* au = ctx_->audit()) au->on_shared_raw(ctx_->block_id(), tile_id_);
    return data_;
  }
  [[nodiscard]] std::span<const T> raw() const { return data_; }

  /// Uncharged mutable access for certified bulk paths.  Unlike raw(), does
  /// NOT mark the tile externally initialized: under certified-skip audit
  /// the Pass 3 safety certificate stands in for per-word bookkeeping, and
  /// callers report the elided progression via notify_certified_skip so the
  /// shadow init state stays consistent.
  [[nodiscard]] std::span<T> certified_raw() { return data_; }

  /// Reports one certified-skip progression to the attached auditor:
  /// `accesses` warp-wide accesses of `lanes` lanes each, all addresses in
  /// [lo, hi).  No-op without an auditor.
  void notify_certified_skip(std::int64_t lo, std::int64_t hi, std::uint64_t accesses,
                             int lanes, bool is_write) {
    if (auto* au = ctx_->audit())
      au->on_certified_skip(ctx_->block_id(), tile_id_, lo, hi, accesses, lanes,
                            is_write);
  }

  /// Warp-wide load: out[lane] = shared[addrs[lane]] for active lanes.
  /// `scattered` marks data-dependent address patterns (performance hint
  /// only; forwarded to the bank-conflict model).
  SharedAccessCost gather(int warp, std::span<const std::int64_t> addrs, std::span<T> out,
                          bool dependent = true, bool scattered = false) {
    assert(out.size() >= addrs.size());
    const SharedAccessCost c =
        ctx_->charge_shared(warp, addrs, dependent, /*is_write=*/false, scattered);
    if (auto* au = ctx_->audit())
      au->on_shared_access(ctx_->block_id(), tile_id_, warp, ctx_->current_phase(),
                           addrs, /*is_write=*/false, ctx_->lanes(), c.conflicts);
    for (std::size_t l = 0; l < addrs.size(); ++l) {
      if (addrs[l] == kInactiveLane) continue;
      assert(addrs[l] >= 0 && static_cast<std::size_t>(addrs[l]) < data_.size());
      out[l] = data_[static_cast<std::size_t>(addrs[l])];
    }
    return c;
  }

  /// Warp-wide store: shared[addrs[lane]] = in[lane] for active lanes.
  /// Active lanes must target distinct addresses (concurrent same-address
  /// writes are a data race on real hardware).
  SharedAccessCost scatter(int warp, std::span<const std::int64_t> addrs,
                           std::span<const T> in, bool dependent = true) {
    assert(in.size() >= addrs.size());
    const SharedAccessCost c = ctx_->charge_shared(warp, addrs, dependent, /*is_write=*/true);
    if (auto* au = ctx_->audit())
      au->on_shared_access(ctx_->block_id(), tile_id_, warp, ctx_->current_phase(),
                           addrs, /*is_write=*/true, ctx_->lanes(), c.conflicts);
    for (std::size_t l = 0; l < addrs.size(); ++l) {
      if (addrs[l] == kInactiveLane) continue;
      assert(addrs[l] >= 0 && static_cast<std::size_t>(addrs[l]) < data_.size());
      data_[static_cast<std::size_t>(addrs[l])] = in[l];
    }
    return c;
  }

 private:
  BlockContext* ctx_;
  std::vector<T> data_;
  std::uint64_t tile_id_;
};

template <typename T>
class GlobalView {
 public:
  using value_type = std::remove_const_t<T>;

  /// Wraps `data` (element index 0 of the view = `data[0]`); `base_elem` is
  /// the element offset of the view within the underlying allocation, used
  /// only to compute physical byte addresses for coalescing.
  GlobalView(BlockContext& ctx, std::span<T> data, std::int64_t base_elem = 0)
      : ctx_(&ctx), data_(data), base_(base_elem) {}

  [[nodiscard]] std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }

  /// Warp-wide load: out[lane] = view[idxs[lane]].
  GlobalAccessCost gather(int warp, std::span<const std::int64_t> idxs,
                          std::span<value_type> out, bool dependent = true) {
    const GlobalAccessCost c = charge(warp, idxs, dependent, /*is_write=*/false);
    for (std::size_t l = 0; l < idxs.size(); ++l) {
      if (idxs[l] == kInactiveLane) continue;
      assert(idxs[l] >= 0 && idxs[l] < size());
      out[l] = data_[static_cast<std::size_t>(idxs[l])];
    }
    return c;
  }

  /// Warp-wide store: view[idxs[lane]] = in[lane].
  GlobalAccessCost scatter(int warp, std::span<const std::int64_t> idxs,
                           std::span<const value_type> in, bool dependent = true)
    requires(!std::is_const_v<T>)
  {
    const GlobalAccessCost c = charge(warp, idxs, dependent, /*is_write=*/true);
    for (std::size_t l = 0; l < idxs.size(); ++l) {
      if (idxs[l] == kInactiveLane) continue;
      assert(idxs[l] >= 0 && idxs[l] < size());
      data_[static_cast<std::size_t>(idxs[l])] = in[l];
    }
    return c;
  }

  /// Uncharged element read, for probe bookkeeping done by the caller.
  [[nodiscard]] const T& peek(std::int64_t i) const {
    assert(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }

  /// Uncharged whole-view access for certified bulk paths; the caller must
  /// charge the movement itself (charge_run below).
  [[nodiscard]] std::span<T> raw() { return data_; }
  [[nodiscard]] std::span<const value_type> raw() const { return data_; }

  /// Charges one warp-wide access to `n` contiguous view elements starting
  /// at element `first` — the closed form of gather/scatter over an
  /// ascending (or descending: same transaction footprint) run.  Caller
  /// must have checked ctx.bulk_global().
  void charge_run(int warp, std::int64_t first, std::int64_t n, bool dependent,
                  bool is_write) {
    assert(first >= 0 && n > 0 && first + n <= size());
    ctx_->charge_gmem_run(warp, (base_ + first) * static_cast<std::int64_t>(sizeof(T)),
                          n, static_cast<int>(sizeof(T)), dependent, is_write);
  }

  [[nodiscard]] BlockContext& context() const { return *ctx_; }

 private:
  GlobalAccessCost charge(int warp, std::span<const std::int64_t> idxs, bool dependent,
                          bool is_write) {
    if (auto* au = ctx_->audit())
      au->on_global_access(ctx_->block_id(), warp, ctx_->current_phase(), idxs, size(),
                           is_write);
    std::int64_t bytes[64];
    assert(idxs.size() <= 64);
    for (std::size_t l = 0; l < idxs.size(); ++l)
      bytes[l] = idxs[l] == kInactiveLane
                     ? kInactiveLane
                     : (base_ + idxs[l]) * static_cast<std::int64_t>(sizeof(T));
    return ctx_->charge_gmem(warp, std::span<const std::int64_t>(bytes, idxs.size()),
                             static_cast<int>(sizeof(T)), dependent, is_write);
  }

  BlockContext* ctx_;
  std::span<T> data_;
  std::int64_t base_;
};

}  // namespace cfmerge::gpusim
