// Worst-case split sequences S and T (Section 4 of the paper).
//
// For parameters w (warp size), E (elements per thread, 1 < E <= w) and
// d = gcd(w, E), the warp's wE elements are divided into d subproblems of
// wE/d elements and w/d threads.  Within a subproblem, the sequence T of
// w/d tuples (a_i, b_i) prescribes how many elements thread i takes from
// the A and B lists.  Most tuples are (E, 0) or (0, E): those threads scan
// E consecutive shared memory positions, and the S-tuples between them are
// chosen (via s_i = i*(r/d) mod (E/d), with w = qE + r) so that the scans
// align in the last E banks — forcing Theta(E) bank conflicts per element
// in Thrust's sequential merge (Theorem 8 gives the exact counts).
//
// This generalizes Berney & Sitchinava (IPDPS 2020), which required w a
// power of two, d = 1 and w/2 < E < w, to arbitrary w, 1 < E <= w and any d.
#pragma once

#include <cstdint>
#include <vector>

namespace cfmerge::worstcase {

/// A per-thread split: the thread consumes `a` elements from the A list and
/// `b` from the B list (a + b == E).
struct Tuple {
  std::int64_t a = 0;
  std::int64_t b = 0;
  bool operator==(const Tuple&) const = default;
};

/// Validated parameter set for the construction.
struct Params {
  int w;  ///< warp size / bank count
  int e;  ///< elements per thread, 1 < e <= w

  /// Throws std::invalid_argument unless 1 < e <= w.
  void validate() const;

  [[nodiscard]] std::int64_t d() const;  ///< gcd(w, e)
  [[nodiscard]] std::int64_t q() const;  ///< w = q*e + r
  [[nodiscard]] std::int64_t r() const;
};

/// The values s_i = i * (r/d) mod (E/d) for i = 1 .. E/d - 1.
/// Lemma 5: all distinct; Lemma 6: s_{E/d - i} = E/d - s_i.
[[nodiscard]] std::vector<std::int64_t> s_sequence(const Params& p);

/// The sequence S of E/d - 1 tuples: (x_i, y_i) with the paper's parity rule
/// (a_i = y_i for odd i, x_i for even i), where x_i = (E/d - s_i) d and
/// y_i = s_i d.
[[nodiscard]] std::vector<Tuple> s_tuples(const Params& p);

/// The sequence T of exactly w/d tuples (the subproblem construction).
/// For E/d == 1 (r == 0) the sequence degenerates to q tuples of (E, 0).
[[nodiscard]] std::vector<Tuple> t_sequence(const Params& p);

/// Tuples for a full warp (w tuples): subproblem l uses T for even l and
/// the A/B-swapped T for odd l, giving the warp ceil(E/2)*w elements of A.
/// `flipped` swaps every tuple — the symmetric warp that balances the pair.
[[nodiscard]] std::vector<Tuple> warp_tuples(const Params& p, bool flipped = false);

/// Sum of the `a` components (the warp's |A|).
[[nodiscard]] std::int64_t a_total(const std::vector<Tuple>& tuples);

}  // namespace cfmerge::worstcase
