// Turning split tuples into merge interleavings.
//
// A tuple sequence assigns each thread a_i elements of A followed by b_i of
// B; concatenating "a_i trues, b_i falses" over the threads yields a boolean
// pattern over the warp's output window: pattern[k] == true iff output rank
// k comes from the A list.  Replicating the (normal, flipped) warp-pair
// pattern tiles any output length that is a multiple of 2wE, and choosing
// strictly increasing values makes merge path reproduce exactly these
// splits.
#pragma once

#include <cstdint>
#include <vector>

#include "worstcase/sequence.hpp"

namespace cfmerge::worstcase {

/// Expands tuples into the per-output-rank origin pattern (true = A).
[[nodiscard]] std::vector<bool> tuples_to_pattern(const std::vector<Tuple>& tuples);

/// Pattern of one warp pair (normal warp followed by the flipped warp):
/// length 2wE, exactly wE trues.
[[nodiscard]] std::vector<bool> warp_pair_pattern(const Params& p);

/// Tiles the warp-pair pattern over `len` output ranks (len must be a
/// multiple of 2wE).  Exactly len/2 trues.
[[nodiscard]] std::vector<bool> tiled_pattern(const Params& p, std::int64_t len);

/// Splits `sorted` (the merged output values, ascending) into the A and B
/// inputs that merge back to it under `pattern`.
template <typename T>
std::pair<std::vector<T>, std::vector<T>> split_by_pattern(const std::vector<T>& sorted,
                                                           const std::vector<bool>& pattern) {
  std::vector<T> a, b;
  a.reserve(sorted.size() / 2 + 1);
  b.reserve(sorted.size() / 2 + 1);
  for (std::size_t k = 0; k < sorted.size(); ++k)
    (pattern[k] ? a : b).push_back(sorted[k]);
  return {std::move(a), std::move(b)};
}

}  // namespace cfmerge::worstcase
