// Worst-case input builders.
//
//  * worst_case_merge_input — two sorted lists whose merge hits the
//    adversarial splits in every warp (one merge level; used by the
//    Theorem 8 predicted-vs-measured experiments).
//  * worst_case_sort_input  — a full permutation of 0..n-1 built top-down
//    through the mergesort pass tree so that *every* global merge pass of
//    the baseline sort sees the worst-case interleaving (the engineering
//    approach of Berney & Sitchinava IPDPS'20, with the generalized
//    Section 4 pattern).  Block-sort leaves are shuffled with a seeded RNG.
#pragma once

#include <cstdint>
#include <vector>

#include "worstcase/interleave.hpp"
#include "worstcase/sequence.hpp"

namespace cfmerge::worstcase {

struct MergeInput {
  std::vector<std::int32_t> a;
  std::vector<std::int32_t> b;
};

/// Inputs for one pairwise merge of total output length `len` (a multiple of
/// 2wE); values are 0..len-1.
[[nodiscard]] MergeInput worst_case_merge_input(const Params& p, std::int64_t len);

/// Full-sort adversarial permutation of 0..n-1.
/// Requirements: n = tiles * u * e with tiles a power of two (>= 1), u a
/// power-of-two multiple of both w and 2w/...; precisely: u*e must be a
/// multiple of 2wE so every pass's pattern tiles block windows exactly.
[[nodiscard]] std::vector<std::int32_t> worst_case_sort_input(const Params& p, int u,
                                                              std::int64_t n,
                                                              std::uint64_t leaf_seed = 0x5eed);

/// Checks the preconditions of worst_case_sort_input; throws on violation.
void validate_sort_input_shape(const Params& p, int u, std::int64_t n);

}  // namespace cfmerge::worstcase
