#include "worstcase/builder.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <random>
#include <stdexcept>

namespace cfmerge::worstcase {

MergeInput worst_case_merge_input(const Params& p, std::int64_t len) {
  std::vector<std::int32_t> sorted(static_cast<std::size_t>(len));
  std::iota(sorted.begin(), sorted.end(), 0);
  const std::vector<bool> pattern = tiled_pattern(p, len);
  auto [a, b] = split_by_pattern(sorted, pattern);
  return {std::move(a), std::move(b)};
}

void validate_sort_input_shape(const Params& p, int u, std::int64_t n) {
  p.validate();
  const std::int64_t tile = static_cast<std::int64_t>(u) * p.e;
  if (u <= 0 || u % p.w != 0)
    throw std::invalid_argument("worst_case_sort_input: u must be a multiple of w");
  if (n <= 0 || n % tile != 0)
    throw std::invalid_argument("worst_case_sort_input: n must be a multiple of u*E");
  const std::int64_t tiles = n / tile;
  if (!std::has_single_bit(static_cast<std::uint64_t>(tiles)))
    throw std::invalid_argument("worst_case_sort_input: n/(u*E) must be a power of two");
  const std::int64_t period = 2LL * p.w * p.e;
  if (tile % period != 0)
    throw std::invalid_argument(
        "worst_case_sort_input: u*E must be a multiple of 2wE (u a multiple of 2w)");
}

namespace {

/// Recursively distributes the sorted values of a segment to its two child
/// runs according to the adversarial pattern, bottoming out at tile leaves.
void build_segment(const Params& p, const std::vector<bool>& period, std::int64_t tile,
                   std::vector<std::int32_t>&& values, std::int64_t base,
                   std::vector<std::int32_t>& out, std::mt19937_64& rng) {
  const auto len = static_cast<std::int64_t>(values.size());
  if (len == tile) {
    std::shuffle(values.begin(), values.end(), rng);
    std::copy(values.begin(), values.end(),
              out.begin() + static_cast<std::ptrdiff_t>(base));
    return;
  }
  const auto plen = static_cast<std::int64_t>(period.size());
  std::vector<std::int32_t> a, b;
  a.reserve(static_cast<std::size_t>(len / 2));
  b.reserve(static_cast<std::size_t>(len / 2));
  for (std::int64_t k = 0; k < len; ++k)
    (period[static_cast<std::size_t>(k % plen)] ? a : b)
        .push_back(values[static_cast<std::size_t>(k)]);
  build_segment(p, period, tile, std::move(a), base, out, rng);
  build_segment(p, period, tile, std::move(b), base + len / 2, out, rng);
}

}  // namespace

std::vector<std::int32_t> worst_case_sort_input(const Params& p, int u, std::int64_t n,
                                                std::uint64_t leaf_seed) {
  validate_sort_input_shape(p, u, n);
  const std::int64_t tile = static_cast<std::int64_t>(u) * p.e;
  std::vector<std::int32_t> sorted(static_cast<std::size_t>(n));
  std::iota(sorted.begin(), sorted.end(), 0);
  std::vector<std::int32_t> out(static_cast<std::size_t>(n));
  std::mt19937_64 rng(leaf_seed);
  const std::vector<bool> period = warp_pair_pattern(p);
  build_segment(p, period, tile, std::move(sorted), 0, out, rng);
  return out;
}

}  // namespace cfmerge::worstcase
