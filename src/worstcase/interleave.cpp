#include "worstcase/interleave.hpp"

#include <stdexcept>

namespace cfmerge::worstcase {

std::vector<bool> tuples_to_pattern(const std::vector<Tuple>& tuples) {
  std::vector<bool> pat;
  for (const Tuple& t : tuples) {
    for (std::int64_t k = 0; k < t.a; ++k) pat.push_back(true);
    for (std::int64_t k = 0; k < t.b; ++k) pat.push_back(false);
  }
  return pat;
}

std::vector<bool> warp_pair_pattern(const Params& p) {
  std::vector<bool> pat = tuples_to_pattern(warp_tuples(p, /*flipped=*/false));
  const std::vector<bool> second = tuples_to_pattern(warp_tuples(p, /*flipped=*/true));
  pat.insert(pat.end(), second.begin(), second.end());
  return pat;
}

std::vector<bool> tiled_pattern(const Params& p, std::int64_t len) {
  const std::vector<bool> period = warp_pair_pattern(p);
  const auto plen = static_cast<std::int64_t>(period.size());
  if (len % plen != 0)
    throw std::invalid_argument("tiled_pattern: len must be a multiple of 2wE");
  std::vector<bool> pat;
  pat.reserve(static_cast<std::size_t>(len));
  for (std::int64_t k = 0; k < len; ++k)
    pat.push_back(period[static_cast<std::size_t>(k % plen)]);
  return pat;
}

}  // namespace cfmerge::worstcase
