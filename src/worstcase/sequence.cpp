#include "worstcase/sequence.hpp"

#include <stdexcept>

#include "numtheory/numtheory.hpp"

namespace cfmerge::worstcase {

using numtheory::gcd;
using numtheory::mod;

void Params::validate() const {
  if (e <= 1) throw std::invalid_argument("worstcase::Params: requires E > 1");
  if (w < e) throw std::invalid_argument("worstcase::Params: requires E <= w");
}

std::int64_t Params::d() const { return gcd(w, e); }
std::int64_t Params::q() const { return w / e; }
std::int64_t Params::r() const { return w % e; }

std::vector<std::int64_t> s_sequence(const Params& p) {
  p.validate();
  const std::int64_t d = p.d();
  const std::int64_t ed = p.e / d;
  const std::int64_t rd = p.r() / d;
  std::vector<std::int64_t> s;
  s.reserve(static_cast<std::size_t>(ed > 0 ? ed - 1 : 0));
  for (std::int64_t i = 1; i < ed; ++i) s.push_back(mod(i * rd, ed));
  return s;
}

std::vector<Tuple> s_tuples(const Params& p) {
  const std::vector<std::int64_t> s = s_sequence(p);
  const std::int64_t d = p.d();
  const std::int64_t ed = p.e / d;
  std::vector<Tuple> out;
  out.reserve(s.size());
  for (std::size_t idx = 0; idx < s.size(); ++idx) {
    const std::int64_t i = static_cast<std::int64_t>(idx) + 1;
    const std::int64_t x = (ed - s[idx]) * d;
    const std::int64_t y = s[idx] * d;
    if (i % 2 == 0)
      out.push_back({x, y});
    else
      out.push_back({y, x});
  }
  return out;
}

std::vector<Tuple> t_sequence(const Params& p) {
  p.validate();
  const std::int64_t d = p.d();
  const std::int64_t e = p.e;
  const std::int64_t ed = e / d;
  const std::int64_t q = p.q();
  const std::int64_t r = p.r();
  const std::int64_t rd = r / d;

  std::vector<Tuple> t;
  t.reserve(static_cast<std::size_t>(p.w / d));

  if (ed == 1) {
    // r == 0: no S tuples exist; the subproblem is q straight scans.
    for (std::int64_t i = 0; i < q; ++i) t.push_back({e, 0});
    return t;
  }

  const std::vector<Tuple> s = s_tuples(p);
  const std::vector<std::int64_t> sv = s_sequence(p);
  auto x_of = [&](std::int64_t i) { return (ed - sv[static_cast<std::size_t>(i - 1)]) * d; };
  auto y_of = [&](std::int64_t i) { return sv[static_cast<std::size_t>(i - 1)] * d; };

  // Step (1): (a_1, b_1) = (y_1, x_1) = (r, E - r), then q tuples of (E, 0).
  t.push_back(s.front());
  for (std::int64_t k = 0; k < q; ++k) t.push_back({e, 0});

  // Step (2): for i = 1 .. E/d - 2, insert (a_{i+1}, b_{i+1}) followed by the
  // filler scans whose count depends on whether x_i + y_{i+1} wrapped
  // (Lemma 7: the sum is r or E + r).
  for (std::int64_t i = 1; i <= ed - 2; ++i) {
    t.push_back(s[static_cast<std::size_t>(i)]);
    const std::int64_t fill = (x_of(i) + y_of(i + 1) == r) ? q : q - 1;
    const Tuple scan = (i % 2 == 0) ? Tuple{e, 0} : Tuple{0, e};
    for (std::int64_t k = 0; k < fill; ++k) t.push_back(scan);
  }

  // Step (3): final q scans, direction set by the parity of E/d - 1.
  const Tuple scan = ((ed - 1) % 2 == 0) ? Tuple{e, 0} : Tuple{0, e};
  for (std::int64_t k = 0; k < q; ++k) t.push_back(scan);

  (void)rd;
  return t;
}

std::vector<Tuple> warp_tuples(const Params& p, bool flipped) {
  const std::vector<Tuple> t = t_sequence(p);
  const std::int64_t d = p.d();
  std::vector<Tuple> out;
  out.reserve(static_cast<std::size_t>(p.w));
  for (std::int64_t l = 0; l < d; ++l) {
    const bool swap = (l % 2 == 1) != flipped;
    for (const Tuple& tp : t) out.push_back(swap ? Tuple{tp.b, tp.a} : tp);
  }
  return out;
}

std::int64_t a_total(const std::vector<Tuple>& tuples) {
  std::int64_t s = 0;
  for (const Tuple& t : tuples) s += t.a;
  return s;
}

}  // namespace cfmerge::worstcase
