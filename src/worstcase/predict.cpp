#include "worstcase/predict.hpp"

namespace cfmerge::worstcase {

std::int64_t predicted_subproblem_conflicts(const Params& p) {
  p.validate();
  const std::int64_t e = p.e;
  const std::int64_t d = p.d();
  const std::int64_t r = p.r();
  if (2 * e <= p.w) return e * e / d;
  return (e * e / d + 2 * e * r / d + e - r * r / d - r) / 2;
}

std::int64_t predicted_warp_conflicts(const Params& p) {
  p.validate();
  const std::int64_t e = p.e;
  const std::int64_t d = p.d();
  const std::int64_t r = p.r();
  if (2 * e <= p.w) return e * e;
  return (e * e + 2 * e * r + e * d - r * r - r * d) / 2;
}

std::int64_t trivial_warp_conflict_bound(const Params& p) {
  return static_cast<std::int64_t>(p.e) * (p.w - 1);
}

}  // namespace cfmerge::worstcase
