// Theorem 8: predicted bank-conflict totals for the worst-case inputs.
#pragma once

#include <cstdint>

#include "worstcase/sequence.hpp"

namespace cfmerge::worstcase {

/// Conflicts a single subproblem's accesses cause in the last E banks:
///   E^2 / d                                     when E <= w/2  (q > 1)
///   (E^2/d + 2Er/d + E - r^2/d - r) / 2         otherwise      (q == 1)
/// Returned as an exact rational evaluated in integers (the paper's
/// quantities are integral for valid parameters).
[[nodiscard]] std::int64_t predicted_subproblem_conflicts(const Params& p);

/// Combining all d subproblems of one warp (the theorem's final display):
///   E^2                                         when 1 < E <= w/2
///   (E^2 + 2Er + Ed - r^2 - rd) / 2             otherwise
[[nodiscard]] std::int64_t predicted_warp_conflicts(const Params& p);

/// The trivial per-step upper bound the paper cites: a thread's sequential
/// merge performs E steps, each of which can serialize against at most
/// min(w, distinct addresses) lanes; the total per warp is bounded by
/// E * (w - 1).
[[nodiscard]] std::int64_t trivial_warp_conflict_bound(const Params& p);

}  // namespace cfmerge::worstcase
