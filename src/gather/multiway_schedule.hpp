// Extension of the CF gather to k shared-memory subsequences: the cascade
// schedule plan.
//
// A k-way tile merge cannot reuse the dual-gather residue invariant
// directly: with k > 2 data-dependent merge-path anchors, the per-thread
// windows cannot tile the residues mod E (two windows tile because pi makes
// B's window adjacent to A's; a third anchor breaks the adjacency).  The
// conflict-free k-way schedule is therefore a *cascade*: log2(k) in-shared
// pairwise stages, each an instance of the proven 2-way schedule, chained
// through a data-independent rank scatter.
//
//   level 0:   k segments, paired (0,1)(2,3)..., each pair's region padded
//              with +inf sentinels to a multiple of wE and stored in the
//              pair's rho(A ∪ pi(B)) layout
//   level l:   pair outputs of level l-1 are the A/B lists of level l; the
//              merged ranks are scattered straight into the parent pair's
//              layout:  thread i writes rank r = iE + j to
//
//                 base' + rho'(r)                  (left child  -> A of parent)
//                 base' + rho'(la'+lb'-1-r)        (right child -> B of parent)
//
//              Both are +/-(iE + j) + C with C data-independent mod wE
//              (bases and la'+lb' are multiples of wE), so every scatter
//              round is a stride-E progression through rho' — conflict-free
//              by the same Corollary 3 CRS argument as the gather, which
//              src/verify lowers and proves per (w, E, k).
//   root:      ranks < total_len() go through the tile-wide output rho
//              (the inverse dual subsequence scatter), then a coalesced
//              global store.
//
// Sentinels only enter at level 0 (ceil-to-wE padding of each pair); they
// sort to the tail of every intermediate run and are dropped at the root.
// Storage is two ping-pong shared buffers of capacity(): levels alternate
// read/write buffers with a barrier in between.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gather/permutation.hpp"

namespace cfmerge::gather {

/// One intermediate run of the cascade (a segment at level 0, a pair output
/// above).  pad_len includes the sentinel tail; it is 0 or a multiple of wE.
struct CascadeRun {
  std::int64_t len = 0;      ///< real (non-sentinel) elements
  std::int64_t pad_len = 0;  ///< storage length incl. sentinels
};

/// One pairwise merge of the cascade: region [base, base + la + lb) of the
/// level's read buffer, laid out as rho(A ∪ pi(B)) over the pair.
struct CascadePair {
  std::int64_t base = 0;
  std::int64_t la = 0;  ///< |A| — left child's real len (level 0) or pad_len
  std::int64_t lb = 0;  ///< |B| incl. the pair's sentinel pad
  BReversal pi{0, 0};
  CircularShift rho{1, 1, 0};

  [[nodiscard]] std::int64_t size() const { return la + lb; }
  /// Physical position (region base included) of A element x / B element y.
  [[nodiscard]] std::int64_t pos_a(std::int64_t x) const { return base + rho(pi.raw_of_a(x)); }
  [[nodiscard]] std::int64_t pos_b(std::int64_t y) const { return base + rho(pi.raw_of_b(y)); }
};

/// The full static cascade for one tile: runs and pair layouts per level,
/// plus the inter-stage scatter map.  Pure index logic — shared between the
/// multiway merge kernel and the verifier's lowering cross-checks.
class CascadePlan {
 public:
  /// `seg_lens` are the k per-segment window lengths of one output tile
  /// (entries may be zero).  k must be a power of two >= 2.
  CascadePlan(int w, int e, std::span<const std::int64_t> seg_lens);

  [[nodiscard]] int w() const { return w_; }
  [[nodiscard]] int e() const { return e_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int levels() const { return levels_; }
  /// Real output elements (the tile size); sentinel ranks come after.
  [[nodiscard]] std::int64_t total_len() const { return total_len_; }
  /// Storage length of every level >= 1 (ranks of the root run).
  [[nodiscard]] std::int64_t padded_len() const { return padded_len_; }

  /// Pairs merged at `level` (level in [0, levels)).
  [[nodiscard]] const std::vector<CascadePair>& pairs(int level) const {
    return pairs_[static_cast<std::size_t>(level)];
  }
  /// Runs entering `level` (level in [0, levels]); runs(levels) is the root.
  [[nodiscard]] const std::vector<CascadeRun>& runs(int level) const {
    return runs_[static_cast<std::size_t>(level)];
  }

  /// Ping-pong buffer indices: level l reads buffer l%2, writes 1-l%2.
  [[nodiscard]] static int read_buffer(int level) { return level % 2; }
  [[nodiscard]] static int write_buffer(int level) { return 1 - level % 2; }

  /// Write position (within the write buffer) of merged rank `r` of pair
  /// `p` at `level`: the parent pair's layout position, or the root layout
  /// rho_out(r) at the last level.
  [[nodiscard]] std::int64_t scatter_pos(int level, int p, std::int64_t r) const {
    if (level + 1 == levels_) return rho_out_(r);
    const CascadePair& parent = pairs_[static_cast<std::size_t>(level + 1)][static_cast<std::size_t>(p / 2)];
    return p % 2 == 0 ? parent.pos_a(r) : parent.pos_b(r);
  }

  /// Root layout position of output rank r (what the final store reads).
  [[nodiscard]] std::int64_t out_pos(std::int64_t r) const { return rho_out_(r); }

  /// Worst-case per-buffer capacity for a tile of `tile` elements — the
  /// static bound used for the LaunchShape: every level-0 pair may round up
  /// to the next wE multiple.
  [[nodiscard]] static std::int64_t capacity(std::int64_t tile, int w, int e, int k) {
    return tile + (static_cast<std::int64_t>(k) / 2) * w * e;
  }

 private:
  int w_;
  int e_;
  int k_;
  int levels_;
  std::int64_t total_len_ = 0;
  std::int64_t padded_len_ = 0;
  std::vector<std::vector<CascadeRun>> runs_;
  std::vector<std::vector<CascadePair>> pairs_;
  CircularShift rho_out_{1, 1, 0};
};

}  // namespace cfmerge::gather
