// Combinatorial validation of gather schedules.
//
// Used by the property tests and the figure harnesses: checks, without
// running the simulator, that a RoundSchedule (a) touches every element of
// A and B exactly once, and (b) never places two reads of the same warp and
// round into the same bank.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gather/schedule.hpp"

namespace cfmerge::gather {

struct ValidationResult {
  bool ok = true;
  /// Max (serialization degree - 1) over all (warp, round) accesses;
  /// 0 for a bank conflict free schedule.
  int max_conflicts = 0;
  /// Total conflicts summed over all accesses.
  std::int64_t total_conflicts = 0;
  /// Human-readable description of the first violation, empty when ok.
  std::string error;
};

/// Validates a complete schedule.
[[nodiscard]] ValidationResult validate_schedule(const RoundSchedule& sched);

/// Builds a schedule with the given per-thread |A_i| sizes (offsets are the
/// prefix sums) and validates it.  Convenience for sweeps.
[[nodiscard]] ValidationResult validate_sizes(int w, int e, int u,
                                              const std::vector<std::int64_t>& a_sizes);

/// The round in which the element at raw index m is read: m mod E after the
/// rho-shift alignment (Section 3.2).  Exposed for the figure harnesses.
[[nodiscard]] std::int64_t round_of_raw(const GatherShape& shape, std::int64_t raw);

}  // namespace cfmerge::gather
