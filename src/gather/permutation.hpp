// The two permutations of the load-balanced dual subsequence gather.
//
//  * pi  (Section 3.1): reverses the B list.  After reversal the elements of
//    each B_i are encountered in descending rounds, which resolves the
//    read conflicts between the A and B lists (Figure 7 shows the stalls
//    that occur without it).
//  * rho (Section 3.2): when d = gcd(w, E) > 1, the set R_j = {j + kE} is
//    not a complete residue system modulo w.  rho partitions the layout into
//    blocks of P = wE/d contiguous elements and circularly shifts partition
//    l forward by (l mod d) positions, realigning the access pattern so the
//    elements read in each round again occupy distinct banks (Corollary 3).
//    For d == 1, rho is the identity.
//
// Both permutations and the round schedule built on them are pure index
// maps; see schedule.hpp for the full Algorithm 1 indexing.
#pragma once

#include <cstdint>

namespace cfmerge::gather {

/// pi: maps an offset within the B list to its "raw" index in the combined
/// layout [ A | reversed B ].  Raw index space is [0, la + lb).
class BReversal {
 public:
  BReversal(std::int64_t la, std::int64_t lb);

  [[nodiscard]] std::int64_t la() const { return la_; }
  [[nodiscard]] std::int64_t lb() const { return lb_; }

  /// Raw index of A element at offset `x` in [0, la).
  [[nodiscard]] std::int64_t raw_of_a(std::int64_t x) const { return x; }
  /// Raw index of B element at offset `y` in [0, lb).
  [[nodiscard]] std::int64_t raw_of_b(std::int64_t y) const { return la_ + (lb_ - 1 - y); }
  /// True when raw index `m` holds an A element.
  [[nodiscard]] bool is_a(std::int64_t m) const { return m < la_; }
  /// Inverse: offset within A (requires is_a(m)).
  [[nodiscard]] std::int64_t a_of_raw(std::int64_t m) const { return m; }
  /// Inverse: offset within B (requires !is_a(m)).
  [[nodiscard]] std::int64_t b_of_raw(std::int64_t m) const { return la_ + lb_ - 1 - m; }

 private:
  std::int64_t la_;
  std::int64_t lb_;
};

/// rho: the circular-shift permutation from raw indices to physical shared
/// memory positions.  Identity when gcd(w, E) == 1.
class CircularShift {
 public:
  /// `w` banks, `E` elements per thread, `total` elements in the layout
  /// (a multiple of w*E/gcd(w,E); for a thread block, total = u*E).
  CircularShift(int w, int e, std::int64_t total);

  [[nodiscard]] int w() const { return w_; }
  [[nodiscard]] int e() const { return e_; }
  [[nodiscard]] int d() const { return d_; }
  /// Partition size P = wE/d.
  [[nodiscard]] std::int64_t partition_size() const { return p_; }
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] bool identity() const { return d_ == 1; }

  /// Physical position of raw index `m`.  The map is evaluated once per
  /// lane in every simulated probe and staging loop, so the power-of-two
  /// case (every non-coprime (w, E) with both powers of two — the common
  /// non-identity configuration) replaces the three divisions with
  /// shifts/masks; both branches compute the same function.
  [[nodiscard]] std::int64_t operator()(std::int64_t m) const {
    if (d_ == 1) return m;
    if (pow2_) {
      const std::int64_t x = (m & p_mask_) + ((m >> p_shift_) & d_mask_);
      return (m & ~p_mask_) + (x >= p_ ? x - p_ : x);
    }
    const std::int64_t l = m / p_;
    const std::int64_t x = m % p_ + l % d_;
    return l * p_ + (x >= p_ ? x - p_ : x);
  }

  /// Inverse: raw index stored at physical position `pos`.
  [[nodiscard]] std::int64_t inverse(std::int64_t pos) const {
    if (d_ == 1) return pos;
    if (pow2_) {
      const std::int64_t x = (pos & p_mask_) - ((pos >> p_shift_) & d_mask_);
      return (pos & ~p_mask_) + (x < 0 ? x + p_ : x);
    }
    const std::int64_t l = pos / p_;
    const std::int64_t x = pos % p_ - l % d_;
    return l * p_ + (x < 0 ? x + p_ : x);
  }

 private:
  int w_;
  int e_;
  int d_;
  std::int64_t p_;
  std::int64_t total_;
  // Shift/mask fast path, valid when p_ and d_ are both powers of two.
  bool pow2_ = false;
  int p_shift_ = 0;
  std::int64_t p_mask_ = 0;
  std::int64_t d_mask_ = 0;
};

}  // namespace cfmerge::gather
