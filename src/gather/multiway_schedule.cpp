#include "gather/multiway_schedule.hpp"

#include <stdexcept>

namespace cfmerge::gather {

CascadePlan::CascadePlan(int w, int e, std::span<const std::int64_t> seg_lens)
    : w_(w), e_(e), k_(static_cast<int>(seg_lens.size())) {
  if (w <= 0 || e <= 0) throw std::invalid_argument("CascadePlan: w and E must be positive");
  if (k_ < 2 || (k_ & (k_ - 1)) != 0)
    throw std::invalid_argument("CascadePlan: k must be a power of two >= 2");
  levels_ = 0;
  for (int v = k_; v > 1; v /= 2) ++levels_;

  const std::int64_t we = static_cast<std::int64_t>(w) * e;
  runs_.resize(static_cast<std::size_t>(levels_) + 1);
  pairs_.resize(static_cast<std::size_t>(levels_));

  auto& leaves = runs_[0];
  leaves.resize(static_cast<std::size_t>(k_));
  for (int s = 0; s < k_; ++s) {
    const std::int64_t n = seg_lens[static_cast<std::size_t>(s)];
    if (n < 0) throw std::invalid_argument("CascadePlan: negative segment length");
    leaves[static_cast<std::size_t>(s)] = {n, n};
    total_len_ += n;
  }

  for (int l = 0; l < levels_; ++l) {
    const auto& in = runs_[static_cast<std::size_t>(l)];
    auto& out = runs_[static_cast<std::size_t>(l) + 1];
    auto& prs = pairs_[static_cast<std::size_t>(l)];
    const int np = static_cast<int>(in.size()) / 2;
    out.resize(static_cast<std::size_t>(np));
    prs.resize(static_cast<std::size_t>(np));
    std::int64_t base = 0;
    for (int p = 0; p < np; ++p) {
      const CascadeRun& left = in[static_cast<std::size_t>(2 * p)];
      const CascadeRun& right = in[static_cast<std::size_t>(2 * p + 1)];
      const std::int64_t real = left.len + right.len;
      std::int64_t la, lb;
      if (l == 0) {
        // Sentinels enter here: pad the pair to the next wE multiple, all of
        // it accounted to the B side (sentinels are the largest B suffix).
        const std::int64_t padded = real == 0 ? 0 : (real + we - 1) / we * we;
        la = left.len;
        lb = padded - la;
      } else {
        // Children are already padded; no new sentinels.
        la = left.pad_len;
        lb = right.pad_len;
      }
      CascadePair pr;
      pr.base = base;
      pr.la = la;
      pr.lb = lb;
      pr.pi = BReversal(la, lb);
      pr.rho = CircularShift(w, e, la + lb);
      prs[static_cast<std::size_t>(p)] = pr;
      out[static_cast<std::size_t>(p)] = {real, la + lb};
      base += la + lb;
    }
  }
  padded_len_ = runs_[static_cast<std::size_t>(levels_)][0].pad_len;
  rho_out_ = CircularShift(w, e, padded_len_);
}

}  // namespace cfmerge::gather
