// Round schedule of the load-balanced dual subsequence gather (Algorithm 1).
//
// A thread block of u threads (u a multiple of w) holds two sorted lists in
// shared memory: A of size la and B of size lb, la + lb = uE, stored in the
// permuted layout  shmem = rho(A ∪ pi(B)).  Thread i owns merge-path
// subsequences A_i (offset a_i, size asz_i) and B_i (offset b_i = iE - a_i,
// size E - asz_i).  The gather proceeds in E rounds; in round j thread i
// reads exactly one element:
//
//   k   = a_i mod E
//   m   = (j - k) mod E
//   if m <  asz_i : element m of A_i            (A read in ascending order)
//   else          : element e = (k - j - 1) mod E of B_i   (descending)
//
// The w physical positions read by a warp in one round occupy w distinct
// banks (Lemma 1 for d = 1; Corollary 3 with rho for d > 1) — zero bank
// conflicts, which tests/test_schedule.cpp verifies exhaustively.
#pragma once

#include <cstdint>
#include <vector>

#include <span>
#include <utility>

#include "gather/permutation.hpp"
#include "mergepath/merge_path.hpp"
#include "numtheory/numtheory.hpp"

namespace cfmerge::gather {

/// Static shape of a gather: device/block geometry plus list sizes.
struct GatherShape {
  int w;            ///< warp size == number of banks
  int e;            ///< elements per thread (paper's E)
  int u;            ///< threads per block (multiple of w)
  std::int64_t la;  ///< size of the block's A list
  std::int64_t lb;  ///< size of the block's B list (la + lb == u*e)

  void validate() const;
  [[nodiscard]] std::int64_t total() const { return la + lb; }
  [[nodiscard]] int d() const { return static_cast<int>(numtheory::gcd(w, e)); }
};

/// One thread's gather read, fully resolved.
struct GatherRead {
  bool from_a;         ///< which list the element comes from
  std::int64_t offset;  ///< offset within that list
  std::int64_t raw;     ///< raw index in [ A | pi(B) ]
  std::int64_t phys;    ///< physical shared memory position rho(raw)
};

/// The per-block round schedule.  Construction is O(1); lookups are O(1)
/// per (thread, round) pair, suitable for use inside simulated kernels.
class RoundSchedule {
 public:
  /// `a_off[i]` / `a_size[i]` describe thread i's A_i (block-local offsets);
  /// spans must live at least as long as the schedule uses them — the
  /// schedule copies them.
  RoundSchedule(const GatherShape& shape, std::vector<std::int64_t> a_off,
                std::vector<std::int64_t> a_size);

  [[nodiscard]] const GatherShape& shape() const { return shape_; }
  [[nodiscard]] const CircularShift& rho() const { return rho_; }
  [[nodiscard]] const BReversal& pi() const { return pi_; }

  /// The element thread `i` reads in round `j` (0 <= j < E).
  ///
  /// Inline: called once per lane per gather round — one of the simulator's
  /// hottest loops.  The two inner mod-E reductions operate on values
  /// already within (-E, E), so a conditional add replaces the division.
  [[nodiscard]] GatherRead read(int i, int j) const {
    const auto idx = static_cast<std::size_t>(i);
    const std::int64_t e = shape_.e;
    const std::int64_t k = a_off_[idx] % e;  // a_off is non-negative
    const std::int64_t jk = j - k;           // in (-E, E)
    const std::int64_t m = jk < 0 ? jk + e : jk;
    GatherRead r;
    if (m < a_size_[idx]) {
      r.from_a = true;
      r.offset = a_off_[idx] + m;
      r.raw = pi_.raw_of_a(r.offset);
    } else {
      const std::int64_t kj = k - j - 1;  // in [-E, E-2]
      const std::int64_t eidx = kj < 0 ? kj + e : kj;
      r.from_a = false;
      r.offset = b_offset(i) + eidx;
      r.raw = pi_.raw_of_b(r.offset);
    }
    r.phys = rho_(r.raw);
    return r;
  }

  /// Register slot the round-j element lands in: items[j] (identity —
  /// documented here because the register file is indexed by round).
  [[nodiscard]] static int register_slot(int j) { return j; }

  /// Where thread i's x-th element of A_i sits in its register file after
  /// the gather: slot (a_i + x) mod E.
  [[nodiscard]] int register_slot_of_a(int i, std::int64_t x) const;
  /// Where thread i's y-th element of B_i sits: slot (a_i - 1 - y) mod E.
  [[nodiscard]] int register_slot_of_b(int i, std::int64_t y) const;

  [[nodiscard]] std::int64_t a_offset(int i) const {
    return a_off_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::int64_t a_size(int i) const {
    return a_size_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::int64_t b_offset(int i) const {
    return static_cast<std::int64_t>(i) * shape_.e - a_off_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::int64_t b_size(int i) const {
    return shape_.e - a_size_[static_cast<std::size_t>(i)];
  }

 private:
  GatherShape shape_;
  BReversal pi_;
  CircularShift rho_;
  std::vector<std::int64_t> a_off_;
  std::vector<std::int64_t> a_size_;
};

/// Builds the merge-path splits (a_off, a_size) for a block from the block's
/// A and B lists, via host-side co-rank search.  Provided for tests and
/// standalone use of the gather; kernels compute splits with the simulated
/// warp search instead.
template <typename T>
std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>> block_splits(
    const GatherShape& shape, std::span<const T> a, std::span<const T> b) {
  std::vector<std::int64_t> off(static_cast<std::size_t>(shape.u));
  std::vector<std::int64_t> size(static_cast<std::size_t>(shape.u));
  std::int64_t prev = 0;
  for (int i = 0; i < shape.u; ++i) {
    off[static_cast<std::size_t>(i)] = prev;
    const std::int64_t next =
        mergepath::merge_path<T>(static_cast<std::int64_t>(i + 1) * shape.e, a, b);
    size[static_cast<std::size_t>(i)] = next - prev;
    prev = next;
  }
  return {std::move(off), std::move(size)};
}

}  // namespace cfmerge::gather
