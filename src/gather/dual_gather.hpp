// Simulated-kernel implementations of the load-balanced dual subsequence
// gather and its inverse scatter (paper footnote 5).
//
// These are the "device" routines: they run inside a simulated thread block,
// issue warp-wide shared memory accesses through the bank-conflict model,
// and move real data between a SharedTile and per-thread register files.
// For valid shapes every access is conflict-free (verified both by the
// schedule validator and by the counters in the sort kernels).
#pragma once

#include <cassert>
#include <span>

#include "cfprims/exec.hpp"
#include "gather/schedule.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/cost_model.hpp"

namespace cfmerge::gather {

/// Destination in shared memory for the A element at offset `x`, under the
/// CF layout shmem = rho(A ∪ pi(B)).
inline std::int64_t cf_position_of_a(const BReversal& pi, const CircularShift& rho,
                                     std::int64_t x) {
  return rho(pi.raw_of_a(x));
}

/// Destination in shared memory for the B element at offset `y`.
inline std::int64_t cf_position_of_b(const BReversal& pi, const CircularShift& rho,
                                     std::int64_t y) {
  return rho(pi.raw_of_b(y));
}

/// Runs the dual subsequence gather for every warp of the block.
///
/// `shmem` must hold the block's lists in the CF layout; `regs` is the
/// block's register file, regs[i * E + j] = item j of thread i.  After the
/// call, thread i's registers hold A_i ∪ B_i arranged by round (see
/// RoundSchedule::register_slot_of_a/b).
///
/// Charges: E warp-wide shared reads per warp (each conflict-free) plus the
/// index arithmetic of Algorithm 1.  `cert` is the cf_gather certificate
/// (or null for the lane-accurate path).
template <typename T>
void dual_subsequence_gather(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem,
                             const RoundSchedule& sched, std::span<T> regs,
                             const verify::CfCertificate* cert = nullptr,
                             int first_thread = 0, std::int64_t base = 0) {
  const GatherShape& s = sched.shape();
  assert(ctx.lanes() == s.w);
  assert(first_thread % s.w == 0 && first_thread >= 0);
  assert(first_thread + s.u <= ctx.threads());
  assert(regs.size() >= (static_cast<std::size_t>(first_thread) +
                         static_cast<std::size_t>(s.u)) *
                            static_cast<std::size_t>(s.e));
  const int vwarps = s.u / s.w;
  const int first_warp = first_thread / s.w;

  if (cert != nullptr && ctx.bulk_shared() && s.e > 0) {
    // Bulk fast path: the generic executor's exact closed-form charges, but
    // the data moved as the two contiguous raw runs each thread reads.
    // Thread i's round-j element is A_i[m] for m = (j - k) mod E < |A_i|
    // (raw index a_i + m, ascending in m), and otherwise the B element at
    // raw index (la + lb - E) - b_i + m — also ascending in m.  The
    // register slot of the m-th element is (k + m) mod E, a rotation, so
    // the whole per-thread gather is two run copies plus a rotating slot
    // index — no per-element mod-E arithmetic (sched.read computes the
    // same function; pinned by tests/test_bulk_charge.cpp).
    const std::span<const T> data = std::as_const(shmem).raw();
    const std::int64_t e = s.e;
    const bool ident = sched.rho().identity();
    for (int vw = 0; vw < vwarps; ++vw) {
      const int pw = first_warp + vw;
      ctx.charge_compute(pw, cfprims::kGatherCharge.setup +
                                 static_cast<std::uint64_t>(e) *
                                     cfprims::kGatherCharge.round);
      for (int lane = 0; lane < s.w; ++lane) {
        const int i = vw * s.w + lane;
        const std::int64_t aoff = sched.a_offset(i);
        const std::int64_t asz = sched.a_size(i);
        const std::int64_t b0 = s.la + s.lb - e - sched.b_offset(i);
        T* r = regs.data() + (static_cast<std::size_t>(first_thread) +
                              static_cast<std::size_t>(i)) *
                                 static_cast<std::size_t>(e);
        std::int64_t j = aoff % e;  // register slot of the m = 0 element
        if (ident) {
          for (std::int64_t m = 0; m < asz; ++m) {
            r[j] = data[static_cast<std::size_t>(base + aoff + m)];
            if (++j == e) j = 0;
          }
          for (std::int64_t m = asz; m < e; ++m) {
            r[j] = data[static_cast<std::size_t>(base + b0 + m)];
            if (++j == e) j = 0;
          }
        } else {
          const CircularShift& rho = sched.rho();
          for (std::int64_t m = 0; m < asz; ++m) {
            r[j] = data[static_cast<std::size_t>(base + rho(aoff + m))];
            if (++j == e) j = 0;
          }
          for (std::int64_t m = asz; m < e; ++m) {
            r[j] = data[static_cast<std::size_t>(base + rho(b0 + m))];
            if (++j == e) j = 0;
          }
        }
      }
      ctx.charge_shared_crs(pw,
                            gpusim::CrsAccessDesc{.rounds = static_cast<int>(e),
                                                  .dependent_rounds = static_cast<int>(e),
                                                  .active_lanes = s.w,
                                                  .is_write = false});
    }
    return;
  }

  // The cf_gather primitive's executor: per-warp setup (k = a_i mod E and
  // the two list offsets), then one CRS read per round.
  cfprims::exec_crs_gather(
      ctx, shmem, s.w, s.e, vwarps, cfprims::kGatherCharge, cert,
      [first_warp](int vw) { return first_warp + vw; },
      [&](int vw, int lane, int j) {
        return base + sched.read(vw * s.w + lane, j).phys;
      },
      [&](int vw, int lane, int j, const T& v) {
        const int i = first_thread + vw * s.w + lane;
        regs[static_cast<std::size_t>(i) * s.e + static_cast<std::size_t>(j)] = v;
      });
}

/// Inverse procedure: writes each thread's E register items into shared
/// memory in the CF layout, bank conflict free (the load-balanced dual
/// subsequence *scatter*).  regs must be arranged by round, exactly as
/// dual_subsequence_gather leaves them.
template <typename T>
void dual_subsequence_scatter(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem,
                              const RoundSchedule& sched, std::span<const T> regs,
                              const verify::CfCertificate* cert = nullptr) {
  const GatherShape& s = sched.shape();
  assert(ctx.lanes() == s.w);
  assert(ctx.threads() == s.u);

  cfprims::exec_crs_scatter(
      ctx, shmem, s.w, s.e, ctx.warps(), cfprims::kGatherCharge, cert,
      [](int vw) { return vw; },
      [&](int vw, int lane, int j) { return sched.read(vw * s.w + lane, j).phys; },
      [&](int vw, int lane, int j) {
        const int i = vw * s.w + lane;
        return regs[static_cast<std::size_t>(i) * s.e + static_cast<std::size_t>(j)];
      });
}

}  // namespace cfmerge::gather
