// Simulated-kernel implementations of the load-balanced dual subsequence
// gather and its inverse scatter (paper footnote 5).
//
// These are the "device" routines: they run inside a simulated thread block,
// issue warp-wide shared memory accesses through the bank-conflict model,
// and move real data between a SharedTile and per-thread register files.
// For valid shapes every access is conflict-free (verified both by the
// schedule validator and by the counters in the sort kernels).
#pragma once

#include <cassert>
#include <span>

#include "cfprims/exec.hpp"
#include "gather/schedule.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/cost_model.hpp"

namespace cfmerge::gather {

/// Destination in shared memory for the A element at offset `x`, under the
/// CF layout shmem = rho(A ∪ pi(B)).
inline std::int64_t cf_position_of_a(const BReversal& pi, const CircularShift& rho,
                                     std::int64_t x) {
  return rho(pi.raw_of_a(x));
}

/// Destination in shared memory for the B element at offset `y`.
inline std::int64_t cf_position_of_b(const BReversal& pi, const CircularShift& rho,
                                     std::int64_t y) {
  return rho(pi.raw_of_b(y));
}

/// Runs the dual subsequence gather for every warp of the block.
///
/// `shmem` must hold the block's lists in the CF layout; `regs` is the
/// block's register file, regs[i * E + j] = item j of thread i.  After the
/// call, thread i's registers hold A_i ∪ B_i arranged by round (see
/// RoundSchedule::register_slot_of_a/b).
///
/// Charges: E warp-wide shared reads per warp (each conflict-free) plus the
/// index arithmetic of Algorithm 1.
template <typename T>
void dual_subsequence_gather(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem,
                             const RoundSchedule& sched, std::span<T> regs) {
  const GatherShape& s = sched.shape();
  assert(ctx.lanes() == s.w);
  assert(ctx.threads() == s.u);
  assert(regs.size() >= static_cast<std::size_t>(s.u) * static_cast<std::size_t>(s.e));

  // The cf_gather primitive's executor: per-warp setup (k = a_i mod E and
  // the two list offsets), then one CRS read per round.
  cfprims::exec_crs_gather(
      ctx, shmem, s.w, s.e, ctx.warps(), cfprims::kGatherCharge,
      [](int vw) { return vw; },
      [&](int vw, int lane, int j) { return sched.read(vw * s.w + lane, j).phys; },
      [&](int vw, int lane, int j, const T& v) {
        const int i = vw * s.w + lane;
        regs[static_cast<std::size_t>(i) * s.e + static_cast<std::size_t>(j)] = v;
      });
}

/// Inverse procedure: writes each thread's E register items into shared
/// memory in the CF layout, bank conflict free (the load-balanced dual
/// subsequence *scatter*).  regs must be arranged by round, exactly as
/// dual_subsequence_gather leaves them.
template <typename T>
void dual_subsequence_scatter(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem,
                              const RoundSchedule& sched, std::span<const T> regs) {
  const GatherShape& s = sched.shape();
  assert(ctx.lanes() == s.w);
  assert(ctx.threads() == s.u);

  cfprims::exec_crs_scatter(
      ctx, shmem, s.w, s.e, ctx.warps(), cfprims::kGatherCharge,
      [](int vw) { return vw; },
      [&](int vw, int lane, int j) { return sched.read(vw * s.w + lane, j).phys; },
      [&](int vw, int lane, int j) {
        const int i = vw * s.w + lane;
        return regs[static_cast<std::size_t>(i) * s.e + static_cast<std::size_t>(j)];
      });
}

}  // namespace cfmerge::gather
