// dual_gather is header-only (templates); this translation unit exists to
// give the module a home in the library and to anchor future non-template
// helpers.
#include "gather/dual_gather.hpp"
