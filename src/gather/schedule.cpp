#include "gather/schedule.hpp"

#include <stdexcept>

namespace cfmerge::gather {

using numtheory::mod;

void GatherShape::validate() const {
  if (w <= 0) throw std::invalid_argument("GatherShape: w must be positive");
  if (e <= 0) throw std::invalid_argument("GatherShape: E must be positive");
  if (u <= 0 || u % w != 0)
    throw std::invalid_argument("GatherShape: u must be a positive multiple of w");
  if (la < 0 || lb < 0) throw std::invalid_argument("GatherShape: negative list size");
  if (la + lb != static_cast<std::int64_t>(u) * e)
    throw std::invalid_argument("GatherShape: la + lb must equal u*E");
}

RoundSchedule::RoundSchedule(const GatherShape& shape, std::vector<std::int64_t> a_off,
                             std::vector<std::int64_t> a_size)
    : shape_(shape),
      pi_(shape.la, shape.lb),
      rho_(shape.w, shape.e, shape.la + shape.lb),
      a_off_(std::move(a_off)),
      a_size_(std::move(a_size)) {
  shape_.validate();
  if (a_off_.size() != static_cast<std::size_t>(shape_.u) || a_size_.size() != a_off_.size())
    throw std::invalid_argument("RoundSchedule: split arrays must have u entries");
  std::int64_t running = 0;
  for (int i = 0; i < shape_.u; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (a_size_[idx] < 0 || a_size_[idx] > shape_.e)
      throw std::invalid_argument("RoundSchedule: |A_i| out of [0, E]");
    if (a_off_[idx] != running)
      throw std::invalid_argument("RoundSchedule: a_i must be the prefix sum of |A_i|");
    running += a_size_[idx];
  }
  if (running != shape_.la)
    throw std::invalid_argument("RoundSchedule: splits do not cover the A list");
}

int RoundSchedule::register_slot_of_a(int i, std::int64_t x) const {
  return static_cast<int>(mod(a_off_[static_cast<std::size_t>(i)] + x, shape_.e));
}

int RoundSchedule::register_slot_of_b(int i, std::int64_t y) const {
  return static_cast<int>(mod(a_off_[static_cast<std::size_t>(i)] - 1 - y, shape_.e));
}

}  // namespace cfmerge::gather
