#include "gather/validator.hpp"

#include <sstream>

#include "cfprims/check.hpp"

namespace cfmerge::gather {

ValidationResult validate_schedule(const RoundSchedule& sched) {
  const GatherShape& s = sched.shape();
  ValidationResult res;

  // Bank conflicts: one shared scan (cfprims::scan_conflicts walks rounds x
  // warp windows with the simulator's own cost model), so the validator and
  // the generic primitive verifier can never disagree on a recount.
  const cfprims::ConflictScan scan = cfprims::scan_conflicts(
      s.w, s.e, s.u,
      [&](std::int64_t i, std::int64_t j) {
        return sched.read(static_cast<int>(i), static_cast<int>(j)).phys;
      });
  res.total_conflicts = scan.total_conflicts;
  res.max_conflicts = scan.max_conflicts;
  if (scan.found) {
    res.ok = false;
    std::ostringstream os;
    os << "bank conflict (degree " << scan.cycles << ") in round " << scan.round
       << ", warp " << scan.window_base / s.w << " (w=" << s.w << ", E=" << s.e
       << ", u=" << s.u << ", la=" << s.la << ")";
    res.error = os.str();
  }

  // Multiplicity: every raw index of A union pi(B) read exactly once.
  std::vector<int> touched(static_cast<std::size_t>(s.total()), 0);
  for (int j = 0; j < s.e; ++j)
    for (int i = 0; i < s.u; ++i) ++touched[static_cast<std::size_t>(sched.read(i, j).raw)];
  for (std::size_t m = 0; m < touched.size(); ++m) {
    if (touched[m] != 1) {
      res.ok = false;
      std::ostringstream os;
      os << "raw index " << m << " read " << touched[m] << " times (expected exactly once)";
      res.error = os.str();
      break;
    }
  }
  return res;
}

ValidationResult validate_sizes(int w, int e, int u, const std::vector<std::int64_t>& a_sizes) {
  std::vector<std::int64_t> off(a_sizes.size());
  std::int64_t run = 0;
  for (std::size_t i = 0; i < a_sizes.size(); ++i) {
    off[i] = run;
    run += a_sizes[i];
  }
  GatherShape shape{w, e, u, run, static_cast<std::int64_t>(u) * e - run};
  RoundSchedule sched(shape, std::move(off), a_sizes);
  return validate_schedule(sched);
}

std::int64_t round_of_raw(const GatherShape& shape, std::int64_t raw) {
  return numtheory::mod(raw, shape.e);
}

}  // namespace cfmerge::gather
