#include "gather/validator.hpp"

#include <numeric>
#include <sstream>

#include "gpusim/shared_memory.hpp"

namespace cfmerge::gather {

ValidationResult validate_schedule(const RoundSchedule& sched) {
  const GatherShape& s = sched.shape();
  ValidationResult res;

  std::vector<int> touched(static_cast<std::size_t>(s.total()), 0);
  std::vector<std::int64_t> addrs(static_cast<std::size_t>(s.w));
  for (int j = 0; j < s.e; ++j) {
    for (int warp = 0; warp < s.u / s.w; ++warp) {
      for (int lane = 0; lane < s.w; ++lane) {
        const GatherRead r = sched.read(warp * s.w + lane, j);
        addrs[static_cast<std::size_t>(lane)] = r.phys;
        ++touched[static_cast<std::size_t>(r.raw)];
      }
      const gpusim::SharedAccessCost cost = gpusim::shared_access_cost(addrs, s.w);
      res.total_conflicts += cost.conflicts;
      if (cost.conflicts > res.max_conflicts) res.max_conflicts = cost.conflicts;
      if (cost.conflicts > 0 && res.ok) {
        res.ok = false;
        std::ostringstream os;
        os << "bank conflict (degree " << cost.cycles << ") in round " << j << ", warp "
           << warp << " (w=" << s.w << ", E=" << s.e << ", u=" << s.u << ", la=" << s.la
           << ")";
        res.error = os.str();
      }
    }
  }
  for (std::size_t m = 0; m < touched.size(); ++m) {
    if (touched[m] != 1) {
      res.ok = false;
      std::ostringstream os;
      os << "raw index " << m << " read " << touched[m] << " times (expected exactly once)";
      res.error = os.str();
      break;
    }
  }
  return res;
}

ValidationResult validate_sizes(int w, int e, int u, const std::vector<std::int64_t>& a_sizes) {
  std::vector<std::int64_t> off(a_sizes.size());
  std::int64_t run = 0;
  for (std::size_t i = 0; i < a_sizes.size(); ++i) {
    off[i] = run;
    run += a_sizes[i];
  }
  GatherShape shape{w, e, u, run, static_cast<std::int64_t>(u) * e - run};
  RoundSchedule sched(shape, std::move(off), a_sizes);
  return validate_schedule(sched);
}

std::int64_t round_of_raw(const GatherShape& shape, std::int64_t raw) {
  return numtheory::mod(raw, shape.e);
}

}  // namespace cfmerge::gather
