#include "gather/permutation.hpp"

#include <bit>
#include <cstdint>
#include <stdexcept>

#include "numtheory/numtheory.hpp"

namespace cfmerge::gather {

BReversal::BReversal(std::int64_t la, std::int64_t lb) : la_(la), lb_(lb) {
  if (la < 0 || lb < 0) throw std::invalid_argument("BReversal: negative list size");
}

CircularShift::CircularShift(int w, int e, std::int64_t total)
    : w_(w), e_(e), d_(static_cast<int>(numtheory::gcd(w, e))), total_(total) {
  if (w <= 0 || e <= 0) throw std::invalid_argument("CircularShift: w and E must be positive");
  if (total < 0) throw std::invalid_argument("CircularShift: negative total");
  p_ = static_cast<std::int64_t>(w) * e / d_;
  if (total % p_ != 0)
    throw std::invalid_argument("CircularShift: total must be a multiple of wE/d");
  if ((p_ & (p_ - 1)) == 0 && (d_ & (d_ - 1)) == 0) {
    pow2_ = true;
    p_shift_ = std::countr_zero(static_cast<std::uint64_t>(p_));
    p_mask_ = p_ - 1;
    d_mask_ = d_ - 1;
  }
}

}  // namespace cfmerge::gather
