#!/usr/bin/env sh
# Proves the engine/executor memory handling is clean: builds the executor
# and engine tests with AddressSanitizer + LeakSanitizer
# (CFMERGE_SANITIZE=address, see the top-level CMakeLists.txt) and runs
# them with a parallel default executor (CFMERGE_SIM_THREADS=4).  The
# SortEngine suite is the interesting one here — cached plans own the
# buffers their kernel bodies capture, and the scratch arena recycles
# allocations across leases, so use-after-free/leak bugs in that ownership
# story surface as hard failures.
#
#   tools/asan_check.sh [build-dir]        (default: build-asan)
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build-asan}"

cmake -B "$BUILD" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCFMERGE_SANITIZE=address \
  -DCFMERGE_BUILD_BENCH=OFF \
  -DCFMERGE_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j --target test_launcher test_kernel_graph \
  test_sort_engine test_merge_sort test_segmented_sort test_batched_merge

for t in test_launcher test_kernel_graph test_sort_engine test_merge_sort \
         test_segmented_sort test_batched_merge; do
  echo "== $t under ASan (CFMERGE_SIM_THREADS=4) =="
  CFMERGE_SIM_THREADS=4 "$BUILD/tests/$t"
done
echo "asan_check: OK — no memory errors or leaks reported"
