// cfsort — command-line driver for the simulated sorters.
//
//   cfsort [options]
//     --op=sort|permute|transpose                 (default sort; permute and
//                                                 transpose run the standalone
//                                                 cf_permute / cf_transpose
//                                                 primitive forward then
//                                                 inverse and verify the
//                                                 round-trip is the identity)
//     --algo=cf|baseline|bitonic|bitonic-padded   (default cf)
//     --dist=uniform-random|sorted|reverse|nearly-sorted|few-distinct|
//            sawtooth|worst-case                  (default uniform-random)
//     --n=<count>                                 (default 245760)
//     --e=<elements per thread>                   (default 15)
//     --u=<threads per block>                     (default 512)
//     --k=<merge arity>                           k-way multiway sort (requires
//                                                 --algo=cf; k=0, the default,
//                                                 keeps the pairwise pipeline)
//     --multiway=cascade|losertree                multiway variant (default
//                                                 cascade — the conflict-free
//                                                 in-shared cascade; losertree
//                                                 is the conflicted baseline)
//     --device=rtx2080ti | turing:<sms> | tiny:<w>,<sms>   (default turing:4)
//     --seed=<seed>                               (default 42)
//     --threads=<host worker threads>             (default 0 = CFMERGE_SIM_THREADS or 1)
//     --segments=<count>                          segmented sort: split the input into
//                                                 <count> pseudo-random-sized segments
//                                                 (deterministic in --seed) and submit
//                                                 them as one kernel graph
//     --serial-graph                              run the kernel graph serially (timing
//                                                 reports are identical; host wall-clock
//                                                 only)
//     --repeat=<count>                            run the sort <count> times on fresh
//                                                 copies of the input and print min and
//                                                 median host wall-clock to stderr
//                                                 (simulated reports are identical across
//                                                 repeats; this measures the simulator).
//                                                 Repeats share one SortEngine, so runs
//                                                 after the first replay a cached plan.
//     --no-plan-cache                             disable the engine's plan cache (every
//                                                 repeat rebuilds its kernel graph)
//     --plan-cache-dir=PATH                       persistent cross-process plan &
//                                                 autotune cache directory (default: the
//                                                 CFMERGE_PLAN_CACHE_DIR environment
//                                                 variable; unset = no persistence).
//                                                 A second process run warm-starts from
//                                                 it: disk hits land in the "engine"
//                                                 stats and --tune skips measurement.
//     --plan-cache-clear                          delete the persistent store file under
//                                                 the cache dir, then continue (requires
//                                                 a cache dir)
//     --tune[=K]                                  pick (E, u) with the autotuner before
//                                                 sorting: statically rank candidates,
//                                                 measure the top K (default 3) with
//                                                 calibration sorts, take the winner.
//                                                 Overrides --e/--u.  With a cache dir,
//                                                 the measured ranking persists and the
//                                                 next process skips the calibration
//                                                 sorts entirely.
//     --no-bulk-charge                            disable the proof-guided bulk
//                                                 accounting path (every warp access is
//                                                 charged per lane; all counters are
//                                                 bit-identical either way)
//     --audit[=full|certified-skip]               attach the shadow-state checker to the
//                                                 run (default full: every access
//                                                 replayed per lane).  certified-skip
//                                                 lets executions backed by a Pass 3
//                                                 safety certificate keep the bulk path,
//                                                 eliding their per-lane replay; the
//                                                 elided count lands on stderr as
//                                                 audit_skipped_accesses.  Exits 1 on
//                                                 any shadow violation.
//     --json                                      emit a JSON report (includes an
//                                                 "engine" field with plan-cache stats
//                                                 for cf/baseline runs)
//     --profile                                   print the phase profile
//     --trace=<file.csv>                          dump the access trace
//     --cf-blocksort                              enable the CF block-sort
//
// Examples:
//   cfsort --algo=baseline --dist=worst-case --n=491520 --profile
//   cfsort --algo=cf --json | jq .throughput_elem_per_us
//   cfsort --algo=cf --segments=16 --json | jq .overlap_speedup
//   cfsort --algo=cf --k=4 --json | jq .passes
//   cfsort --algo=cf --k=4 --multiway=losertree --profile
//   cfsort --op=permute --e=15 --u=512 --json | jq .totals.bank_conflicts
//   cfsort --op=transpose --n=122880 --profile
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <random>
#include <string>

#include "cfmerge.hpp"

using namespace cfmerge;

namespace {

struct Options {
  std::string op = "sort";
  std::string algo = "cf";
  std::string dist = "uniform-random";
  std::int64_t n = 245760;
  int e = 15;
  int u = 512;
  int k = 0;  // 0 = pairwise pipeline; >= 2 = k-way multiway sort
  std::string multiway = "cascade";
  std::string device = "turing:4";
  std::uint64_t seed = 42;
  int threads = 0;  // 0 = CFMERGE_SIM_THREADS env or sequential
  int segments = 0;  // 0 = plain sort; N >= 1 = segmented sort over N segments
  int repeat = 1;
  std::string plan_cache_dir;  // empty = CFMERGE_PLAN_CACHE_DIR env, else none
  bool plan_cache_clear = false;
  int tune = 0;  // 0 = off; K >= 1 = measure the top K candidates
  bool no_plan_cache = false;
  bool no_bulk_charge = false;
  std::string audit;  // "" = off, "full", "certified-skip"
  bool serial_graph = false;
  bool json = false;
  bool profile = false;
  bool cf_blocksort = false;
  std::string trace_path;
};

[[noreturn]] void usage(const char* msg) {
  if (msg) std::fprintf(stderr, "cfsort: %s\n", msg);
  std::fprintf(stderr,
               "usage: cfsort [--op=sort|permute|transpose]\n"
               "              [--algo=cf|baseline|bitonic|bitonic-padded]\n"
               "              [--dist=NAME] [--n=N] [--e=E] [--u=U]\n"
               "              [--k=K] [--multiway=cascade|losertree]\n"
               "              [--device=rtx2080ti|turing:SMS|tiny:W,SMS]\n"
               "              [--seed=S] [--threads=T] [--segments=N] [--serial-graph]\n"
               "              [--repeat=N] [--no-plan-cache] [--no-bulk-charge]\n"
               "              [--audit[=full|certified-skip]]\n"
               "              [--plan-cache-dir=PATH] [--plan-cache-clear] [--tune[=K]]\n"
               "              [--json] [--profile]\n"
               "              [--trace=FILE] [--cf-blocksort]\n");
  std::exit(msg ? 2 : 0);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* key) -> std::string {
      const std::size_t klen = std::strlen(key);
      if (a.rfind(key, 0) == 0 && a.size() > klen && a[klen] == '=')
        return a.substr(klen + 1);
      return {};
    };
    if (a == "--help" || a == "-h") usage(nullptr);
    else if (auto v = val("--op"); !v.empty()) o.op = v;
    else if (auto v = val("--algo"); !v.empty()) o.algo = v;
    else if (auto v = val("--dist"); !v.empty()) o.dist = v;
    else if (auto v = val("--n"); !v.empty()) o.n = std::stoll(v);
    else if (auto v = val("--e"); !v.empty()) o.e = std::stoi(v);
    else if (auto v = val("--u"); !v.empty()) o.u = std::stoi(v);
    else if (auto v = val("--k"); !v.empty()) o.k = std::stoi(v);
    else if (auto v = val("--multiway"); !v.empty()) o.multiway = v;
    else if (auto v = val("--device"); !v.empty()) o.device = v;
    else if (auto v = val("--seed"); !v.empty()) o.seed = std::stoull(v);
    else if (auto v = val("--threads"); !v.empty()) o.threads = std::stoi(v);
    else if (auto v = val("--segments"); !v.empty()) o.segments = std::stoi(v);
    else if (auto v = val("--repeat"); !v.empty()) o.repeat = std::stoi(v);
    else if (auto v = val("--trace"); !v.empty()) o.trace_path = v;
    else if (auto v = val("--plan-cache-dir"); !v.empty()) o.plan_cache_dir = v;
    else if (a == "--plan-cache-clear") o.plan_cache_clear = true;
    else if (a == "--tune") o.tune = 3;
    else if (auto v = val("--tune"); !v.empty()) o.tune = std::stoi(v);
    else if (a == "--no-plan-cache") o.no_plan_cache = true;
    else if (a == "--no-bulk-charge") o.no_bulk_charge = true;
    else if (a == "--audit") o.audit = "full";
    else if (auto v = val("--audit"); !v.empty()) o.audit = v;
    else if (a == "--serial-graph") o.serial_graph = true;
    else if (a == "--json") o.json = true;
    else if (a == "--profile") o.profile = true;
    else if (a == "--cf-blocksort") o.cf_blocksort = true;
    else usage(("unknown argument: " + a).c_str());
  }
  return o;
}

gpusim::DeviceSpec make_device(const std::string& name) {
  if (name == "rtx2080ti") return gpusim::DeviceSpec::rtx2080ti();
  if (name.rfind("turing:", 0) == 0)
    return gpusim::DeviceSpec::scaled_turing(std::stoi(name.substr(7)));
  if (name.rfind("tiny:", 0) == 0) {
    const std::string rest = name.substr(5);
    const auto comma = rest.find(',');
    const int w = std::stoi(rest.substr(0, comma));
    const int sms = comma == std::string::npos ? 2 : std::stoi(rest.substr(comma + 1));
    return gpusim::DeviceSpec::tiny(w, sms);
  }
  usage(("unknown device: " + name).c_str());
}

workloads::Distribution parse_dist(const std::string& name) {
  for (const auto d : workloads::all_distributions())
    if (name == workloads::distribution_name(d)) return d;
  usage(("unknown distribution: " + name).c_str());
}

/// Splits `data` into `count` segments with pseudo-random sizes drawn
/// deterministically from `seed` (a request-batch shape: uneven but
/// reproducible).  Every element of `data` lands in exactly one segment.
std::vector<std::vector<std::int32_t>> split_segments(const std::vector<std::int32_t>& data,
                                                      int count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> weights(static_cast<std::size_t>(count));
  double total = 0.0;
  for (auto& w : weights) {
    w = 1.0 + static_cast<double>(rng() % 1000);  // spread ~1:1000
    total += w;
  }
  std::vector<std::vector<std::int32_t>> segments;
  segments.reserve(weights.size());
  std::size_t begin = 0;
  for (int s = 0; s < count; ++s) {
    std::size_t len = s + 1 == count
                          ? data.size() - begin
                          : static_cast<std::size_t>(weights[static_cast<std::size_t>(s)] /
                                                     total * static_cast<double>(data.size()));
    len = std::min(len, data.size() - begin);
    segments.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(begin),
                          data.begin() + static_cast<std::ptrdiff_t>(begin + len));
    begin += len;
  }
  return segments;
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);  // mutable: --tune overrides o.e / o.u
  gpusim::DeviceSpec dev = make_device(o.device);
  dev.bulk_charge = !o.no_bulk_charge;
  gpusim::Launcher launcher(std::move(dev));
  launcher.set_threads(o.threads);
  gpusim::TraceSink sink;
  if (!o.trace_path.empty()) launcher.set_trace(&sink);

  if (!o.audit.empty() && o.audit != "full" && o.audit != "certified-skip")
    usage(("unknown audit mode: " + o.audit + " (valid: full, certified-skip)").c_str());
  verify::ShadowChecker shadow;
  if (!o.audit.empty()) {
    launcher.set_audit(&shadow);
    launcher.set_audit_skip(o.audit == "certified-skip");
  }

  // Persistent plan & autotune cache: --plan-cache-dir wins, the
  // CFMERGE_PLAN_CACHE_DIR environment variable is the fallback.
  std::string cache_dir = o.plan_cache_dir;
  if (cache_dir.empty()) {
    if (const char* env = std::getenv("CFMERGE_PLAN_CACHE_DIR"); env != nullptr)
      cache_dir = env;
  }
  if (o.plan_cache_clear && cache_dir.empty())
    usage("--plan-cache-clear requires --plan-cache-dir or CFMERGE_PLAN_CACHE_DIR");
  if (o.plan_cache_clear && !cache::PlanCacheStore::clear(cache_dir)) {
    std::fprintf(stderr, "cfsort: cannot clear plan cache under %s\n",
                 cache_dir.c_str());
    return 1;
  }
  std::unique_ptr<cache::PlanCacheStore> store;
  if (!cache_dir.empty()) store = std::make_unique<cache::PlanCacheStore>(cache_dir);

  // --tune picks (E, u) before the workload is generated: the worst-case
  // builder's tile rounding and the sort itself must agree on the choice.
  if (o.tune > 0) {
    if (o.op != "sort" || (o.algo != "cf" && o.algo != "baseline"))
      usage("--tune requires --op=sort with --algo=cf or --algo=baseline");
    analysis::TuneOptions topts;
    topts.variant = o.algo == "cf" ? sort::Variant::CFMerge : sort::Variant::Baseline;
    auto candidates = analysis::enumerate_candidates(launcher.device(), topts);
    if (candidates.empty()) usage("--tune found no (E, u) candidate for this device");
    analysis::measure_candidates(launcher, candidates, topts, o.tune,
                                 /*tiles_per_candidate=*/4, o.seed, store.get());
    o.e = candidates.front().e;
    o.u = candidates.front().u;
    std::fprintf(stderr,
                 "cfsort: tuned (E, u) = (%d, %d) from %zu candidates "
                 "(measured top %d, %.1f elements/us)\n",
                 o.e, o.u, candidates.size(),
                 std::min<int>(o.tune, static_cast<int>(candidates.size())),
                 candidates.front().measured_throughput);
  }

  workloads::WorkloadSpec spec;
  spec.dist = parse_dist(o.dist);
  spec.n = o.n;
  spec.seed = o.seed;
  spec.w = launcher.device().warp_size;
  spec.e = o.e;
  spec.u = o.u;

  // The worst-case builder needs exact tile shapes; round up for the user.
  if (spec.dist == workloads::Distribution::WorstCase) {
    const std::int64_t tile = static_cast<std::int64_t>(o.u) * o.e;
    std::int64_t tiles = std::max<std::int64_t>((o.n + tile - 1) / tile, 1);
    while (tiles & (tiles - 1)) ++tiles;
    spec.n = tiles * tile;
    if (spec.n != o.n)
      std::fprintf(stderr, "cfsort: worst-case input rounded n to %lld\n",
                   static_cast<long long>(spec.n));
  }

  std::vector<std::int32_t> data = workloads::generate(spec);

  if (o.segments < 0) usage("--segments must be positive");
  if (o.segments > 0 && o.algo != "cf" && o.algo != "baseline")
    usage("--segments requires --algo=cf or --algo=baseline");
  if (o.repeat < 1) usage("--repeat must be >= 1");
  if (o.k != 0 && o.k < 2) usage("--k must be 0 (pairwise) or an arity >= 2");
  if (o.k > 0 && o.algo != "cf") usage("--k requires --algo=cf");
  if (o.k > 0 && o.segments > 0) usage("--k and --segments are mutually exclusive");
  if (o.multiway != "cascade" && o.multiway != "losertree")
    usage(("unknown multiway variant: " + o.multiway +
           " (valid: cascade, losertree)").c_str());
  if (o.op != "sort" && o.op != "permute" && o.op != "transpose")
    usage(("unknown op: " + o.op + " (valid: sort, permute, transpose)").c_str());
  if (o.algo != "cf" && o.algo != "baseline" && o.algo != "bitonic" &&
      o.algo != "bitonic-padded")
    usage(("unknown algorithm: " + o.algo +
           " (valid: cf, baseline, bitonic, bitonic-padded)").c_str());
  if (o.op != "sort" && o.algo != "cf")
    usage("--op=permute|transpose requires --algo=cf");
  if (o.op != "sort" && (o.k > 0 || o.segments > 0))
    usage("--op=permute|transpose is incompatible with --k and --segments");

  // Runs the sort `o.repeat` times, each on a fresh copy of the unsorted
  // input, and prints min/median host wall-clock to stderr (simulated
  // reports are deterministic, so repeats only measure the simulator
  // itself).  Leaves the last run's output in `data` and returns its report.
  auto repeat_wall = [&](auto&& run_once) {
    using Report = std::decay_t<decltype(run_once(data))>;
    std::optional<Report> report;
    std::vector<double> ms(static_cast<std::size_t>(o.repeat));
    for (int r = 0; r < o.repeat; ++r) {
      std::vector<std::int32_t> work = r + 1 == o.repeat ? std::move(data) : data;
      const auto t0 = std::chrono::steady_clock::now();
      report = run_once(work);
      const auto t1 = std::chrono::steady_clock::now();
      ms[static_cast<std::size_t>(r)] =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (r + 1 == o.repeat) data = std::move(work);
    }
    if (o.repeat > 1) {
      std::sort(ms.begin(), ms.end());
      std::fprintf(stderr, "cfsort: repeat=%d host wall min=%.3f ms median=%.3f ms\n",
                   o.repeat, ms.front(), ms[ms.size() / 2]);
    }
    return *report;
  };

  // One engine shared across all repeats: the first run builds (and caches)
  // the plan, later runs replay it.  The stats land on stderr and in the
  // JSON report's "engine" field.
  sort::SortEngine engine(launcher);
  engine.set_plan_cache_enabled(!o.no_plan_cache);
  if (store) engine.set_store(store.get());
  auto print_engine_stats = [&] {
    const sort::EngineStats es = engine.stats();
    if (store)
      std::fprintf(stderr,
                   "cfsort: plan store hits=%llu misses=%llu writes=%llu "
                   "evictions=%llu corrupt=%llu entries=%llu bytes=%llu\n",
                   static_cast<unsigned long long>(es.disk_hits),
                   static_cast<unsigned long long>(es.disk_misses),
                   static_cast<unsigned long long>(es.disk_writes),
                   static_cast<unsigned long long>(es.disk_evictions),
                   static_cast<unsigned long long>(es.disk_corrupt),
                   static_cast<unsigned long long>(es.disk_entries),
                   static_cast<unsigned long long>(es.disk_bytes));
    if (o.repeat > 1 || o.no_plan_cache)
      std::fprintf(stderr,
                   "cfsort: plan cache hits=%llu misses=%llu hit_rate=%.3f "
                   "arena=%llu B\n",
                   static_cast<unsigned long long>(es.plan_hits),
                   static_cast<unsigned long long>(es.plan_misses), es.hit_rate(),
                   static_cast<unsigned long long>(es.arena_bytes));
    std::fprintf(stderr,
                 "cfsort: accounting bulk=%llu lane=%llu bulk_rate=%.3f "
                 "cert hits=%llu misses=%llu cached=%llu\n",
                 static_cast<unsigned long long>(es.bulk_charges),
                 static_cast<unsigned long long>(es.lane_charges), es.bulk_rate(),
                 static_cast<unsigned long long>(es.cert_hits),
                 static_cast<unsigned long long>(es.cert_misses),
                 static_cast<unsigned long long>(es.certs_cached));
    if (!o.audit.empty())
      std::fprintf(stderr, "cfsort: audit mode=%s audit_skipped_accesses=%llu\n",
                   o.audit.c_str(),
                   static_cast<unsigned long long>(es.audit_skipped_accesses));
  };

  // Reports the shadow checker's verdict after the run; any violation is a
  // hard failure (the auditor saw something the static proofs rule out).
  auto check_shadow = [&]() -> int {
    if (o.audit.empty()) return 0;
    const verify::ShadowSummary sum = shadow.summary();
    std::fprintf(stderr,
                 "cfsort: shadow shared_accesses=%llu skipped_accesses=%llu "
                 "violations=%zu\n",
                 static_cast<unsigned long long>(sum.shared_accesses),
                 static_cast<unsigned long long>(sum.skipped_accesses),
                 sum.violations.size() + static_cast<std::size_t>(sum.dropped_violations));
    if (sum.clean()) return 0;
    for (const verify::ShadowViolation& v : sum.violations)
      std::fprintf(stderr, "cfsort: SHADOW VIOLATION [%s] block %d warp %d %s: %s\n",
                   v.kind.c_str(), v.block, v.warp, v.phase.c_str(),
                   v.detail.c_str());
    return 1;
  };

  if (o.op != "sort") {
    cfprims::PermuteConfig cfg;
    cfg.op = o.op == "transpose" ? cfprims::PermuteOp::kTranspose
                                 : cfprims::PermuteOp::kPermute;
    cfg.e = o.e;
    cfg.u = o.u;
    const auto mode =
        o.serial_graph ? gpusim::GraphExec::Serial : gpusim::GraphExec::Overlap;
    const std::vector<std::int32_t> original = data;
    const auto report = repeat_wall([&](std::vector<std::int32_t>& work) {
      work.resize(original.size());  // undo the previous repeat's padding
      cfprims::PermuteConfig fwd = cfg;
      fwd.inverse = false;
      return engine.permute(work, fwd, mode);
    });
    // Round-trip: the inverse op must restore the original array exactly.
    cfprims::PermuteConfig inv = cfg;
    inv.inverse = true;
    engine.permute(data, inv, mode);
    data.resize(original.size());
    if (data != original) {
      std::fprintf(stderr, "cfsort: ROUND-TRIP NOT IDENTITY (bug)\n");
      return 1;
    }
    print_engine_stats();
    if (o.json) {
      const sort::EngineStats es = engine.stats();
      analysis::write_json(std::cout, report, launcher.device().name, o.dist, &es);
    } else {
      std::printf("%s | %s | n=%lld | %.1f us | %.1f elements/us | "
                  "conflicts=%llu | roundtrip ok\n",
                  report.op_name(), o.dist.c_str(), static_cast<long long>(report.n),
                  report.microseconds, report.throughput(),
                  static_cast<unsigned long long>(report.totals.bank_conflicts));
      if (o.profile) analysis::print_phase_profile(std::cout, report.phases, report.n_padded);
    }
  } else if (o.algo == "bitonic" || o.algo == "bitonic-padded") {
    sort::BitonicConfig cfg;
    cfg.u = o.u;
    cfg.elems_per_thread = 2;
    cfg.padded = o.algo == "bitonic-padded";
    const auto report = repeat_wall([&](std::vector<std::int32_t>& work) {
      return sort::bitonic_sort(launcher, work, cfg);
    });
    if (!std::is_sorted(data.begin(), data.end())) {
      std::fprintf(stderr, "cfsort: OUTPUT NOT SORTED (bug)\n");
      return 1;
    }
    if (o.json) {
      analysis::write_json(std::cout, report, cfg, launcher.device().name, o.dist);
    } else {
      std::printf("%s | %s | n=%lld | %.1f us | %.1f elements/us | conflicts=%llu\n",
                  o.algo.c_str(), o.dist.c_str(), static_cast<long long>(report.n),
                  report.microseconds, report.throughput(),
                  static_cast<unsigned long long>(report.totals.bank_conflicts));
    }
  } else if ((o.algo == "cf" || o.algo == "baseline") && o.segments > 0) {
    sort::MergeConfig cfg;
    cfg.e = o.e;
    cfg.u = o.u;
    cfg.variant = o.algo == "cf" ? sort::Variant::CFMerge : sort::Variant::Baseline;
    cfg.cf_blocksort = o.cf_blocksort;
    const auto mode =
        o.serial_graph ? gpusim::GraphExec::Serial : gpusim::GraphExec::Overlap;
    std::vector<std::vector<std::int32_t>> segments;
    const auto report = repeat_wall([&](std::vector<std::int32_t>& work) {
      segments = split_segments(work, o.segments, o.seed);
      return engine.segmented_sort(segments, cfg, mode);
    });
    print_engine_stats();
    for (const auto& seg : segments) {
      if (!std::is_sorted(seg.begin(), seg.end())) {
        std::fprintf(stderr, "cfsort: SEGMENT NOT SORTED (bug)\n");
        return 1;
      }
    }
    if (o.json) {
      const sort::EngineStats es = engine.stats();
      analysis::write_json(std::cout, report, cfg, launcher.device().name, o.dist, &es);
    } else {
      std::printf("%s\n", analysis::summarize(report, o.algo + "/segmented").c_str());
      if (o.profile) analysis::print_phase_profile(std::cout, report.phases, report.elements);
    }
  } else if (o.algo == "cf" && o.k > 0) {
    sort::MultiwayConfig cfg;
    cfg.e = o.e;
    cfg.u = o.u;
    cfg.k = o.k;
    cfg.variant = o.multiway == "cascade" ? sort::MultiwayVariant::CFCascade
                                          : sort::MultiwayVariant::LoserTree;
    cfg.cf_blocksort = o.cf_blocksort;
    const auto mode =
        o.serial_graph ? gpusim::GraphExec::Serial : gpusim::GraphExec::Overlap;
    const auto report = repeat_wall([&](std::vector<std::int32_t>& work) {
      return engine.sort_multiway(work, cfg, mode);
    });
    print_engine_stats();
    if (!std::is_sorted(data.begin(), data.end())) {
      std::fprintf(stderr, "cfsort: OUTPUT NOT SORTED (bug)\n");
      return 1;
    }
    if (o.json) {
      const sort::EngineStats es = engine.stats();
      analysis::write_json(std::cout, report, cfg, launcher.device().name, o.dist, &es);
    } else {
      const std::string label =
          o.algo + "/" + o.multiway + "-k" + std::to_string(o.k);
      std::printf("%s\n", analysis::summarize(report, label).c_str());
      if (o.profile) analysis::print_phase_profile(std::cout, report.phases, report.n_padded);
    }
  } else if (o.algo == "cf" || o.algo == "baseline") {
    sort::MergeConfig cfg;
    cfg.e = o.e;
    cfg.u = o.u;
    cfg.variant = o.algo == "cf" ? sort::Variant::CFMerge : sort::Variant::Baseline;
    cfg.cf_blocksort = o.cf_blocksort;
    const auto report = repeat_wall([&](std::vector<std::int32_t>& work) {
      return engine.sort(work, cfg);
    });
    print_engine_stats();
    if (!std::is_sorted(data.begin(), data.end())) {
      std::fprintf(stderr, "cfsort: OUTPUT NOT SORTED (bug)\n");
      return 1;
    }
    if (o.json) {
      const sort::EngineStats es = engine.stats();
      analysis::write_json(std::cout, report, cfg, launcher.device().name, o.dist, &es);
    } else {
      std::printf("%s\n", analysis::summarize(report, o.algo).c_str());
      if (o.profile) analysis::print_phase_profile(std::cout, report.phases, report.n_padded);
    }
  } else {
    usage(("unknown algorithm: " + o.algo).c_str());
  }

  if (const int rc = check_shadow(); rc != 0) return rc;

  if (!o.trace_path.empty()) {
    std::ofstream f(o.trace_path);
    if (!f) {
      std::fprintf(stderr, "cfsort: cannot write %s\n", o.trace_path.c_str());
      return 1;
    }
    sink.write_csv(f);
    std::fprintf(stderr, "cfsort: wrote %zu trace events to %s\n", sink.size(),
                 o.trace_path.c_str());
  }
  if (store && !store->save())
    std::fprintf(stderr, "cfsort: warning: could not persist plan cache to %s\n",
                 store->file_path().string().c_str());
  return 0;
}
