#!/usr/bin/env python3
"""Offline markdown link checker for the repository docs.

Scans README.md, the other root-level *.md files and docs/*.md for inline
markdown links and validates every *relative* target: the linked file must
exist in the repository, and a `#fragment` (same-file or cross-file) must
match a heading anchor of the target, using GitHub's slugification rules.
External targets (http/https/mailto) are listed but never fetched -- the
check is deterministic and runs offline, so CI cannot flake on someone
else's server.

Usage: tools/check_links.py [FILE.md ...]     (default: the doc set above)
Exit status: 0 when every relative link resolves, 1 otherwise.

Stdlib only -- no dependencies.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^(```|~~~)")
# [text](target) / [text](target "title"); target stops at whitespace or ')'.
LINK_RE = re.compile(r"\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # any URI scheme


def default_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md")) + sorted((REPO_ROOT / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def strip_fences(text: str) -> list[str]:
    """Return the lines of `text` with fenced code blocks blanked out."""
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return out


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: inline markup dropped, lowercased, punctuation
    removed, spaces to hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_]", "", text)                      # emphasis markers
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    if path not in cache:
        slugs: set[str] = set()
        counts: dict[str, int] = {}
        for line in strip_fences(path.read_text(encoding="utf-8")):
            m = HEADING_RE.match(line)
            if not m:
                continue
            base = github_slug(m.group(2))
            n = counts.get(base, 0)
            counts[base] = n + 1
            slugs.add(base if n == 0 else f"{base}-{n}")
        cache[path] = slugs
    return cache[path]


def check_file(path: Path, cache: dict[Path, set[str]]) -> tuple[list[str], int, int]:
    errors: list[str] = []
    relative = external = 0
    for lineno, line in enumerate(strip_fences(path.read_text(encoding="utf-8")), 1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if EXTERNAL_RE.match(target):
                external += 1
                continue
            relative += 1
            target, _, fragment = target.partition("#")
            dest = path if not target else (path.parent / target).resolve()
            shown = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
            where = f"{shown}:{lineno}"
            if target and not dest.is_file():
                errors.append(f"{where}: broken link -> {m.group(1)} (no such file)")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in anchors_of(dest, cache):
                    errors.append(
                        f"{where}: broken anchor -> {m.group(1)} "
                        f"(no heading '#{fragment}' in {dest.name})")
    return errors, relative, external


def main(argv: list[str]) -> int:
    files = [Path(a).resolve() for a in argv] if argv else default_files()
    cache: dict[Path, set[str]] = {}
    all_errors: list[str] = []
    total_rel = total_ext = 0
    for f in files:
        errors, rel, ext = check_file(f, cache)
        all_errors.extend(errors)
        total_rel += rel
        total_ext += ext
    for e in all_errors:
        print(e, file=sys.stderr)
    status = "FAIL" if all_errors else "OK"
    print(f"{status}: {len(files)} files, {total_rel} relative links checked, "
          f"{total_ext} external links skipped, {len(all_errors)} broken")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
