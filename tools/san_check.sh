#!/usr/bin/env bash
# Sanitizer harness for the simulator, one script for all three passes:
#
#   tools/san_check.sh thread     [build-dir]   (default: build-tsan)
#   tools/san_check.sh address    [build-dir]   (default: build-asan)
#   tools/san_check.sh undefined  [build-dir]   (default: build-ubsan)
#
# thread    proves the Launcher's worker pool is race-free: builds the
#           executor tests with ThreadSanitizer and runs them with a parallel
#           default executor (CFMERGE_SIM_THREADS=4), so every launch in
#           every test — not just the explicitly parallel ones — exercises
#           the pool.  TSan aborts on any data race, so a plain pass is the
#           proof.
# address   proves the engine/executor memory handling is clean
#           (ASan + LeakSan).  The SortEngine suite is the interesting one —
#           cached plans own the buffers their kernel bodies capture and the
#           scratch arena recycles allocations across leases, so
#           use-after-free/leak bugs in that ownership story surface as hard
#           failures.
# undefined runs the whole tier-1 test suite under UBSan with
#           -fno-sanitize-recover=all: any signed overflow, bad shift,
#           misaligned access or invalid enum load aborts the test binary.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-}"
case "$MODE" in
  thread)
    DEFAULT_BUILD=build-tsan
    TARGETS="test_launcher test_merge_sort test_kernel_graph test_segmented_sort"
    ;;
  address)
    DEFAULT_BUILD=build-asan
    TARGETS="test_launcher test_kernel_graph test_sort_engine test_merge_sort \
             test_segmented_sort test_batched_merge"
    ;;
  undefined)
    DEFAULT_BUILD=build-ubsan
    TARGETS=""  # whole suite via ctest
    ;;
  *)
    echo "usage: tools/san_check.sh {thread|address|undefined} [build-dir]" >&2
    exit 2
    ;;
esac
BUILD="${2:-$DEFAULT_BUILD}"

cmake -B "$BUILD" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCFMERGE_SANITIZE="$MODE" \
  -DCFMERGE_BUILD_BENCH=OFF \
  -DCFMERGE_BUILD_EXAMPLES=OFF

# Run the checks with the exit status captured explicitly, so a sanitizer
# report (or ctest failure) provably propagates to this script's own exit
# code and CI always sees one machine-greppable summary line either way.
status=0
if [ "$MODE" = undefined ]; then
  cmake --build "$BUILD" -j
  CFMERGE_SIM_THREADS=4 ctest --test-dir "$BUILD" -j"$(nproc 2>/dev/null || echo 2)" \
    --output-on-failure || status=$?
else
  # shellcheck disable=SC2086
  cmake --build "$BUILD" -j --target $TARGETS
  for t in $TARGETS; do
    echo "== $t under $MODE sanitizer (CFMERGE_SIM_THREADS=4) =="
    CFMERGE_SIM_THREADS=4 "$BUILD/tests/$t" || { status=$?; break; }
  done
fi

if [ "$status" -ne 0 ]; then
  echo "san_check $MODE: FAIL — exit $status propagated" >&2
  exit "$status"
fi
echo "san_check $MODE: OK — no issues reported"
