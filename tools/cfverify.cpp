// cfverify — static bank-conflict verifier + shared-memory shadow checker.
//
//   cfverify [options]
//     --all                        full sweep: CF gather proofs for every
//                                  w in {4,8,16,32,64} x 1 < E <= w, broken-
//                                  variant refutations, Theorem 8 analyses
//                                  and bitonic profiles (the default when no
//                                  --w/--e is given)
//     --w=W --e=E                  verify one (w, E) family only (plus its
//                                  broken variants and Theorem 8 analysis)
//     --widths=4,8,16              override the sweep widths
//     --ks=2,4,8                   override the multiway merge arities (each
//                                  must be a power of two >= 2)
//     --no-broken                  skip the deliberately-broken refutations
//     --no-primitives              skip the registered-CFPrimitive sweep and
//                                  fall back to the legacy cf_gather-only
//                                  proofs
//     --no-worstcase               skip the Theorem 8 analyses
//     --no-bitonic                 skip the bitonic exchange profiles
//     --no-multiway                skip the k-way cascade proofs and the
//                                  direct k-ary CF-claim refutations
//     --no-safety                  skip Pass 3 (static memory safety: bounds,
//                                  init-before-read, race-freedom + the
//                                  safety-ablation refutations)
//     --shadow                     also run dynamic launches (a CF merge sort
//                                  and a Theorem 8 baseline warp merge) with
//                                  the shared-memory shadow checker attached,
//                                  and fold its summary into the report
//     --json                       emit the machine-readable report
//     --quiet                      suppress the per-proof text table
//
// Exit status: 0 when every required proof holds, every broken schedule is
// refuted and the shadow checker is clean; 1 otherwise; 2 on usage errors.
//
// Examples:
//   cfverify --all --json | jq .ok
//   cfverify --w=32 --e=15
//   cfverify --all --shadow
#include <array>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cfmerge.hpp"

using namespace cfmerge;

namespace {

struct Options {
  bool all = false;
  int w = 0;
  int e = 0;
  std::vector<int> widths = {4, 8, 16, 32, 64};
  std::vector<int> ks = {2, 4, 8};
  bool broken = true;
  bool primitives = true;
  bool worstcase = true;
  bool bitonic = true;
  bool multiway = true;
  bool safety = true;
  bool shadow = false;
  bool json = false;
  bool quiet = false;
};

[[noreturn]] void usage(const char* msg) {
  if (msg) std::fprintf(stderr, "cfverify: %s\n", msg);
  std::fprintf(stderr,
               "usage: cfverify [--all] [--w=W --e=E] [--widths=4,8,...] [--ks=2,4,...]\n"
               "                [--no-broken] [--no-primitives] [--no-worstcase]\n"
               "                [--no-bitonic] [--no-multiway] [--no-safety] [--shadow]\n"
               "                [--json]\n"
               "                [--quiet]\n");
  std::exit(msg ? 2 : 0);
}

std::vector<int> parse_int_list(const std::string& csv, const char* flag) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoi(item));
  if (out.empty()) usage((std::string(flag) + ": empty list").c_str());
  return out;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* key) -> std::string {
      const std::size_t klen = std::strlen(key);
      if (a.rfind(key, 0) == 0 && a.size() > klen && a[klen] == '=')
        return a.substr(klen + 1);
      return {};
    };
    if (a == "--help" || a == "-h") usage(nullptr);
    else if (a == "--all") o.all = true;
    else if (auto v = val("--w"); !v.empty()) o.w = std::stoi(v);
    else if (auto v = val("--e"); !v.empty()) o.e = std::stoi(v);
    else if (auto v = val("--widths"); !v.empty()) o.widths = parse_int_list(v, "--widths");
    else if (auto v = val("--ks"); !v.empty()) o.ks = parse_int_list(v, "--ks");
    else if (a == "--no-broken") o.broken = false;
    else if (a == "--no-primitives") o.primitives = false;
    else if (a == "--no-worstcase") o.worstcase = false;
    else if (a == "--no-bitonic") o.bitonic = false;
    else if (a == "--no-multiway") o.multiway = false;
    else if (a == "--no-safety") o.safety = false;
    else if (a == "--shadow") o.shadow = true;
    else if (a == "--json") o.json = true;
    else if (a == "--quiet") o.quiet = true;
    else usage(("unknown argument: " + a).c_str());
  }
  if ((o.w != 0) != (o.e != 0)) usage("--w and --e must be given together");
  if (o.w != 0 && o.all) usage("--all and --w/--e are mutually exclusive");
  for (const int k : o.ks)
    if (k < 2 || (k & (k - 1)) != 0)
      usage("--ks: every arity must be a power of two >= 2");
  return o;
}

/// Single-family report: the same shape verify_all produces for one (w, E) —
/// every registered CFPrimitive through the generic lowering path, then the
/// cascades (reusing cf_gather's proof as the two-way lemma), Theorem 8 and
/// the bitonic profiles.
verify::VerifyReport verify_one(const Options& o) {
  verify::VerifyReport report;
  verify::ProofObject two_way;
  if (o.primitives) {
    for (const cfprims::CFPrimitive* prim : cfprims::registry()) {
      if (!prim->supports(o.w, o.e)) continue;
      const bool broken = !prim->expected_conflict_free(o.w, o.e);
      if (broken && !o.broken) continue;
      verify::ProofObject po = verify::verify_primitive(*prim, o.w, o.e);
      if (!broken && prim->name() == "cf_gather") two_way = po;
      (broken ? report.refutations : report.proofs).push_back(std::move(po));
    }
  } else {
    two_way = verify::verify_cf_gather(o.w, o.e);
    report.proofs.push_back(two_way);
    if (o.broken) {
      report.refutations.push_back(
          verify::verify_cf_gather(o.w, o.e, verify::ScheduleVariant::kNoBReversal));
      if (numtheory::gcd(static_cast<std::int64_t>(o.w),
                         static_cast<std::int64_t>(o.e)) > 1)
        report.refutations.push_back(
            verify::verify_cf_gather(o.w, o.e, verify::ScheduleVariant::kNoRhoShift));
    }
  }
  if (o.multiway)
    for (const int k : o.ks) {
      report.proofs.push_back(verify::verify_multiway_cascade(o.w, o.e, k, &two_way));
      if (o.broken)
        report.refutations.push_back(verify::refute_multiway_direct(o.w, o.e, k));
    }
  if (o.safety) {
    for (const cfprims::CFPrimitive* prim : cfprims::registry()) {
      if (!prim->supports(o.w, o.e)) continue;
      report.safety_proofs.push_back(verify::verify_primitive_safety(*prim, o.w, o.e));
    }
    report.safety_proofs.push_back(verify::verify_merge_safety(o.w, o.e));
    report.safety_proofs.push_back(verify::verify_blocksort_safety(o.w, o.e));
    if (o.multiway)
      for (const int k : o.ks)
        report.safety_proofs.push_back(verify::verify_multiway_safety(o.w, o.e, k));
    for (const cfprims::CFPrimitive* prim : cfprims::safety_ablations()) {
      if (!prim->supports(o.w, o.e)) continue;
      report.safety_refutations.push_back(
          verify::verify_primitive_safety(*prim, o.w, o.e));
    }
  }
  if (o.worstcase)
    report.worstcase.push_back(
        verify::analyze_worstcase_warp(worstcase::Params{o.w, o.e}));
  if (o.bitonic) {
    const std::int64_t tile = 4 * static_cast<std::int64_t>(o.w);
    report.proofs.push_back(verify::verify_bitonic_exchange(tile, o.w, true));
    report.proofs.push_back(verify::verify_bitonic_exchange(tile, o.w, false));
    report.refutations.push_back(verify::refute_bitonic_unpadded(tile, o.w));
  }
  return report;
}

/// Dynamic shadow-checked launches: a small CF merge sort end to end plus a
/// Theorem 8 baseline warp merge, everything audited word by word.
verify::ShadowSummary run_shadow() {
  verify::ShadowChecker checker;

  {
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(32));
    launcher.set_audit(&checker);
    sort::MergeConfig cfg;
    cfg.e = 4;
    cfg.u = 64;
    std::vector<int> data(static_cast<std::size_t>(4 * cfg.tile()));
    std::uint64_t s = 0x5eedULL;
    for (int& x : data) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      x = static_cast<int>(s >> 40);
    }
    sort::merge_sort(launcher, data, cfg);
  }

  {
    const worstcase::Params p{8, 6};
    const std::int64_t wE = static_cast<std::int64_t>(p.w) * p.e;
    const worstcase::MergeInput in = worstcase::worst_case_merge_input(p, 2 * wE);
    const auto tuples = worstcase::warp_tuples(p, false);
    const std::int64_t la = worstcase::a_total(tuples);
    const std::int64_t lb = wE - la;

    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(p.w));
    launcher.set_audit(&checker);
    launcher.launch("warp_merge", gpusim::LaunchShape{1, p.w, 0, 32},
                    [&](gpusim::BlockContext& ctx) {
                      gpusim::SharedTile<int> tile(ctx, static_cast<std::size_t>(wE));
                      for (std::int64_t x = 0; x < la; ++x)
                        tile.raw()[static_cast<std::size_t>(x)] =
                            in.a[static_cast<std::size_t>(x)];
                      for (std::int64_t y = 0; y < lb; ++y)
                        tile.raw()[static_cast<std::size_t>(la + y)] =
                            in.b[static_cast<std::size_t>(y)];
                      std::vector<sort::MergeLaneDesc> descs(static_cast<std::size_t>(p.w));
                      std::int64_t ao = 0, bo = 0;
                      for (int i = 0; i < p.w; ++i) {
                        const worstcase::Tuple& t = tuples[static_cast<std::size_t>(i)];
                        descs[static_cast<std::size_t>(i)] = {ao, t.a, bo, t.b};
                        ao += t.a;
                        bo += t.b;
                      }
                      std::vector<int> regs(static_cast<std::size_t>(wE));
                      sort::warp_serial_merge(ctx, tile,
                                              std::span<const sort::MergeLaneDesc>(descs),
                                              p.e, [](std::int64_t x) { return x; },
                                              [la](std::int64_t y) { return la + y; },
                                              std::span<int>(regs));
                    });
  }

  return checker.summary();
}

void print_text(const verify::VerifyReport& report) {
  auto line = [](const verify::ProofObject& p, bool want_proved) {
    const char* mark = (p.proved() == want_proved) ? "ok " : "FAIL";
    char arity[8] = "    ";
    if (p.k > 0) std::snprintf(arity, sizeof arity, "k=%-2d", p.k);
    std::printf("  [%s] %-22s w=%-3d E=%-3d %s d=%lld  %s\n", mark, p.schedule.c_str(),
                p.w, p.e, arity, static_cast<long long>(p.d),
                p.verdict == verify::Verdict::kProved          ? "proved"
                : p.verdict == verify::Verdict::kCounterexample ? "counterexample"
                                                                : "refuted (no witness)");
    if (p.verdict == verify::Verdict::kCounterexample && !want_proved)
      std::printf("         %s\n", p.counterexample.str().c_str());
    for (const verify::ProofStep& s : p.steps)
      if (s.status == verify::StepStatus::kFailed)
        std::printf("         step %s FAILED: %s\n", s.name.c_str(), s.detail.c_str());
  };

  std::printf("proofs (%zu, must all be proved):\n", report.proofs.size());
  for (const auto& p : report.proofs) line(p, true);
  std::printf("refutations (%zu, must all be refuted):\n", report.refutations.size());
  for (const auto& p : report.refutations) line(p, false);
  if (!report.safety_proofs.empty()) {
    std::printf("safety proofs (%zu, must all be proved):\n",
                report.safety_proofs.size());
    for (const auto& p : report.safety_proofs) line(p, true);
  }
  if (!report.safety_refutations.empty()) {
    std::printf("safety refutations (%zu, must all be refuted):\n",
                report.safety_refutations.size());
    for (const auto& p : report.safety_refutations) line(p, false);
  }

  // Per-arity rollup of the k-way results (mirrors the JSON "multiway" list).
  std::map<int, std::array<long long, 3>> per_k;  // proved, refuted, witnesses
  for (const auto& p : report.proofs)
    if (p.k > 0 && p.verdict == verify::Verdict::kProved) ++per_k[p.k][0];
  for (const auto& p : report.refutations)
    if (p.k > 0) {
      ++per_k[p.k][1];
      if (p.verdict == verify::Verdict::kCounterexample) ++per_k[p.k][2];
    }
  if (!per_k.empty()) {
    std::printf("multiway summary (per arity):\n");
    for (const auto& [k, c] : per_k)
      std::printf("  k=%-2d  %lld cascade schedules proved, %lld direct claims refuted"
                  " (%lld with lane-pair witness)\n",
                  k, c[0], c[1], c[2]);
  }

  // Per-family rollup of the registered-CFPrimitive sweep (mirrors the JSON
  // "primitives" list).
  std::map<std::string, std::array<long long, 3>> per_family;
  for (const auto& p : report.proofs)
    if (!p.family.empty() && p.verdict == verify::Verdict::kProved)
      ++per_family[p.family][0];
  for (const auto& p : report.refutations)
    if (!p.family.empty()) {
      ++per_family[p.family][1];
      if (p.verdict == verify::Verdict::kCounterexample) ++per_family[p.family][2];
    }
  if (!per_family.empty()) {
    std::printf("primitives summary (per family):\n");
    for (const auto& [name, c] : per_family)
      std::printf("  %-22s %lld shapes proved, %lld refuted (%lld with witness)\n",
                  name.c_str(), c[0], c[1], c[2]);
  }
  // Per-family rollup of the Pass 3 safety sweep (mirrors the JSON
  // "safety" list).
  std::map<std::string, std::array<long long, 3>> per_safety;
  for (const auto& p : report.safety_proofs)
    if (p.verdict == verify::Verdict::kProved) ++per_safety[p.family][0];
  for (const auto& p : report.safety_refutations) {
    ++per_safety[p.family][1];
    if (p.verdict == verify::Verdict::kCounterexample) ++per_safety[p.family][2];
  }
  if (!per_safety.empty()) {
    std::printf("safety summary (per family):\n");
    for (const auto& [name, c] : per_safety)
      std::printf("  %-28s %lld shapes safety-proved, %lld refuted (%lld with witness)\n",
                  name.c_str(), c[0], c[1], c[2]);
  }
  if (!report.worstcase.empty()) {
    std::printf("Theorem 8 worst-case analyses:\n");
    for (const auto& wc : report.worstcase)
      std::printf("  w=%-3d E=%-3d exact=%-6lld closed-form=%-6lld bounds=[%lld, %lld]"
                  " accesses=%lld\n",
                  wc.w, wc.e, static_cast<long long>(wc.exact_conflicts),
                  static_cast<long long>(wc.closed_form),
                  static_cast<long long>(wc.min_bound),
                  static_cast<long long>(wc.max_bound),
                  static_cast<long long>(wc.accesses));
  }
  if (report.shadow.enabled) {
    std::printf("shadow checker: %llu shared accesses over %llu words — %s\n",
                static_cast<unsigned long long>(report.shadow.shared_accesses),
                static_cast<unsigned long long>(report.shadow.checked_words),
                report.shadow.clean() ? "clean" : "VIOLATIONS");
    for (const auto& v : report.shadow.violations)
      std::printf("  [%s] block %d warp %d phase %s: %s\n", v.kind.c_str(), v.block,
                  v.warp, v.phase.c_str(), v.detail.c_str());
  }
  std::printf("verdict: %s\n", report.ok() ? "OK" : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  verify::VerifyReport report;
  if (o.w != 0) {
    report = verify_one(o);
  } else {
    verify::VerifyOptions vo;
    vo.widths = o.widths;
    vo.broken = o.broken;
    vo.primitives = o.primitives;
    vo.worstcase = o.worstcase;
    vo.bitonic = o.bitonic;
    vo.multiway = o.multiway;
    vo.safety = o.safety;
    vo.ks = o.ks;
    report = verify_all(vo);
  }
  if (o.shadow) report.shadow = run_shadow();

  if (o.json)
    analysis::write_json(std::cout, report);
  else if (!o.quiet)
    print_text(report);

  return report.ok() ? 0 : 1;
}
