#!/usr/bin/env python3
"""cf_lint — the raw-shared-access lint gate.

Every stride-E shared-memory access pattern in kernel code is supposed to go
through the certified executors in src/cfprims/ (exec_crs_gather and
friends): those are the only call sites the Pass 1 conflict-freedom and
Pass 3 safety certificates cover, and the only ones the bulk accounting /
certified-skip audit paths can elide.  A SharedTile touched directly —
.gather() / .scatter() / .raw() / .certified_raw() — outside src/cfprims/
is therefore either (a) a deliberately uncertified access family (data-
dependent serial merge, the conflicted bitonic baseline, ...) or (b) a bug
waiting to bypass the verifier.

This lint finds every such direct touch and requires it to be covered by an
ALLOWLIST entry carrying a reason.  Unexplained touches fail the build; so
do stale allowlist entries (zero unexplained entries, in both directions).

Mechanics: for each C++ file under src/ (excluding src/cfprims/, which owns
the executors, and src/gpusim/memory_views.hpp, which defines SharedTile),
collect the names of variables declared with type SharedTile<...> (plain,
reference, parameter or unique_ptr), then flag every `name.method(` /
`name->method(` / `std::as_const(name).method(` use of a shared-access
method on such a name.

Exit status: 0 clean, 1 violations or stale allowlist, 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Direct SharedTile methods that move data or escape the access model.
METHODS = ("gather", "scatter", "raw", "certified_raw")

# path (relative to repo root) -> {method -> reason}.  A "*" method covers
# every method in that file.  Every entry must match at least one flagged
# site or the lint fails (no stale suppressions).
ALLOWLIST: dict[str, dict[str, str]] = {
    "src/sort/serial_merge.hpp": {
        "gather": "data-dependent serial-merge reads: addresses come from key "
                  "comparisons, not an affine schedule, so no certificate can "
                  "cover them; they must stay on the audited lane path",
    },
    "src/sort/bitonic.hpp": {
        "*": "the deliberately conflicted bitonic baseline: its whole point "
             "is to show what uncertified stride patterns cost",
    },
    "src/sort/kernels.hpp": {
        "gather": "merge-path probe reads and padded-lane staging: "
                  "data-dependent diagonal search, outside any affine family",
        "scatter": "tile load/store lane path: global<->shared staging at "
                   "stride 1/E, charged exactly, audited per lane",
        "raw": "load/store_tile_affine bulk fast path, gated on "
               "ctx.bulk_shared() (never taken under audit) and charged via "
               "charge_shared_crs like the cfprims executors",
    },
    "src/sort/multiway_pass.hpp": {
        "gather": "k-way cascade head reads and loser-tree baseline: "
                  "data-dependent rank selection, outside any affine family",
        "scatter": "cascade fill and loser-tree baseline writes: "
                   "data-dependent ranks, audited per lane",
    },
    "src/gather/dual_gather.hpp": {
        "raw": "head-flag precompute for the certified executor: a read-only "
               "const raw() peek used to build the schedule that is then run "
               "through cfprims::exec_crs_gather/scatter",
    },
}

DECL_RE = re.compile(
    r"SharedTile\s*<[^<>]*(?:<[^<>]*>)?[^<>]*>\s*>?\s*[&*]?\s*(\w+)\s*[;,)({=]"
)
AS_CONST_RE = re.compile(
    r"std::as_const\(\s*(?:\*\s*)?(\w+)\s*\)\s*\.\s*(" + "|".join(METHODS) + r")\s*\("
)


def find_decl_names(text: str) -> set[str]:
    return set(DECL_RE.findall(text))


def flag_file(path: Path) -> list[tuple[int, str, str]]:
    """Returns (line, name, method) for each direct SharedTile access."""
    text = path.read_text()
    names = find_decl_names(text)
    if not names:
        return []
    use_re = re.compile(
        r"(?:\*\s*)?\b(" + "|".join(re.escape(n) for n in names) + r")\b\s*"
        r"(?:\.|->)\s*(" + "|".join(METHODS) + r")\s*\("
    )
    out = []
    for i, line in enumerate(text.splitlines(), 1):
        stripped = line.lstrip()
        if stripped.startswith("//"):
            continue
        for m in use_re.finditer(line):
            out.append((i, m.group(1), m.group(2)))
        for m in AS_CONST_RE.finditer(line):
            if m.group(1) in names:
                out.append((i, m.group(1), m.group(2)))
    return out


def main() -> int:
    if len(sys.argv) > 1:
        print(__doc__)
        return 2

    files = sorted(
        p
        for p in SRC.rglob("*")
        if p.suffix in (".hpp", ".cpp")
        and "cfprims" not in p.parts
        and p.name != "memory_views.hpp"
    )

    violations: list[str] = []
    used_entries: set[tuple[str, str]] = set()
    flagged_total = 0

    for path in files:
        rel = path.relative_to(REPO).as_posix()
        allow = ALLOWLIST.get(rel, {})
        for line, name, method in flag_file(path):
            flagged_total += 1
            if "*" in allow:
                used_entries.add((rel, "*"))
            elif method in allow:
                used_entries.add((rel, method))
            else:
                violations.append(
                    f"{rel}:{line}: direct SharedTile access `{name}.{method}()` "
                    f"outside src/cfprims/ — route it through a cfprims::exec_* "
                    f"executor or add an allowlist entry with a reason"
                )

    stale = [
        f"{rel}: stale allowlist entry for `{method}` (no matching access)"
        for rel, methods in ALLOWLIST.items()
        for method in methods
        if (rel, method) not in used_entries
    ]

    for v in violations:
        print(f"cf_lint: VIOLATION {v}")
    for s in stale:
        print(f"cf_lint: STALE {s}")
    ok = not violations and not stale
    print(
        f"cf_lint: {flagged_total} direct accesses in {len(files)} files, "
        f"{len(violations)} unexplained, {len(stale)} stale allowlist entries "
        f"-> {'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
