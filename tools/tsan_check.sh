#!/usr/bin/env sh
# Proves the Launcher's worker pool is race-free: builds the executor tests
# with ThreadSanitizer (CFMERGE_SANITIZE=thread, see the top-level
# CMakeLists.txt) and runs them with a parallel default executor
# (CFMERGE_SIM_THREADS=4), so every launch in every test — not just the
# explicitly parallel ones — exercises the pool.  TSan aborts the test
# binary on any data race, so a plain pass is the proof.
#
#   tools/tsan_check.sh [build-dir]        (default: build-tsan)
#
# Use CFMERGE_SANITIZE=address the same way for an ASan/leak pass.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build-tsan}"

cmake -B "$BUILD" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCFMERGE_SANITIZE=thread \
  -DCFMERGE_BUILD_BENCH=OFF \
  -DCFMERGE_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j --target test_launcher test_merge_sort \
  test_kernel_graph test_segmented_sort

for t in test_launcher test_merge_sort test_kernel_graph test_segmented_sort; do
  echo "== $t under TSan (CFMERGE_SIM_THREADS=4) =="
  CFMERGE_SIM_THREADS=4 "./$BUILD/tests/$t"
done
echo "tsan_check: OK — no data races reported"
