file(REMOVE_RECURSE
  "libcfmerge.a"
)
