# Empty dependencies file for cfmerge.
# This may be replaced when dependencies are built.
