
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/autotune.cpp" "src/CMakeFiles/cfmerge.dir/analysis/autotune.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/analysis/autotune.cpp.o.d"
  "/root/repo/src/analysis/experiment.cpp" "src/CMakeFiles/cfmerge.dir/analysis/experiment.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/analysis/experiment.cpp.o.d"
  "/root/repo/src/analysis/json.cpp" "src/CMakeFiles/cfmerge.dir/analysis/json.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/analysis/json.cpp.o.d"
  "/root/repo/src/analysis/plot.cpp" "src/CMakeFiles/cfmerge.dir/analysis/plot.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/analysis/plot.cpp.o.d"
  "/root/repo/src/analysis/pram_model.cpp" "src/CMakeFiles/cfmerge.dir/analysis/pram_model.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/analysis/pram_model.cpp.o.d"
  "/root/repo/src/analysis/profile.cpp" "src/CMakeFiles/cfmerge.dir/analysis/profile.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/analysis/profile.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/CMakeFiles/cfmerge.dir/analysis/table.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/analysis/table.cpp.o.d"
  "/root/repo/src/analysis/trace_replay.cpp" "src/CMakeFiles/cfmerge.dir/analysis/trace_replay.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/analysis/trace_replay.cpp.o.d"
  "/root/repo/src/dmm/dmm.cpp" "src/CMakeFiles/cfmerge.dir/dmm/dmm.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/dmm/dmm.cpp.o.d"
  "/root/repo/src/gather/dual_gather.cpp" "src/CMakeFiles/cfmerge.dir/gather/dual_gather.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gather/dual_gather.cpp.o.d"
  "/root/repo/src/gather/permutation.cpp" "src/CMakeFiles/cfmerge.dir/gather/permutation.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gather/permutation.cpp.o.d"
  "/root/repo/src/gather/schedule.cpp" "src/CMakeFiles/cfmerge.dir/gather/schedule.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gather/schedule.cpp.o.d"
  "/root/repo/src/gather/validator.cpp" "src/CMakeFiles/cfmerge.dir/gather/validator.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gather/validator.cpp.o.d"
  "/root/repo/src/gpusim/block_context.cpp" "src/CMakeFiles/cfmerge.dir/gpusim/block_context.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gpusim/block_context.cpp.o.d"
  "/root/repo/src/gpusim/device_spec.cpp" "src/CMakeFiles/cfmerge.dir/gpusim/device_spec.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gpusim/device_spec.cpp.o.d"
  "/root/repo/src/gpusim/global_memory.cpp" "src/CMakeFiles/cfmerge.dir/gpusim/global_memory.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gpusim/global_memory.cpp.o.d"
  "/root/repo/src/gpusim/l2_cache.cpp" "src/CMakeFiles/cfmerge.dir/gpusim/l2_cache.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gpusim/l2_cache.cpp.o.d"
  "/root/repo/src/gpusim/launcher.cpp" "src/CMakeFiles/cfmerge.dir/gpusim/launcher.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gpusim/launcher.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/CMakeFiles/cfmerge.dir/gpusim/occupancy.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gpusim/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/shared_memory.cpp" "src/CMakeFiles/cfmerge.dir/gpusim/shared_memory.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gpusim/shared_memory.cpp.o.d"
  "/root/repo/src/gpusim/stats.cpp" "src/CMakeFiles/cfmerge.dir/gpusim/stats.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gpusim/stats.cpp.o.d"
  "/root/repo/src/gpusim/timing.cpp" "src/CMakeFiles/cfmerge.dir/gpusim/timing.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gpusim/timing.cpp.o.d"
  "/root/repo/src/gpusim/trace.cpp" "src/CMakeFiles/cfmerge.dir/gpusim/trace.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/gpusim/trace.cpp.o.d"
  "/root/repo/src/mergepath/merge_path.cpp" "src/CMakeFiles/cfmerge.dir/mergepath/merge_path.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/mergepath/merge_path.cpp.o.d"
  "/root/repo/src/numtheory/numtheory.cpp" "src/CMakeFiles/cfmerge.dir/numtheory/numtheory.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/numtheory/numtheory.cpp.o.d"
  "/root/repo/src/sort/merge_sort.cpp" "src/CMakeFiles/cfmerge.dir/sort/merge_sort.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/sort/merge_sort.cpp.o.d"
  "/root/repo/src/sort/odd_even.cpp" "src/CMakeFiles/cfmerge.dir/sort/odd_even.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/sort/odd_even.cpp.o.d"
  "/root/repo/src/workloads/generators.cpp" "src/CMakeFiles/cfmerge.dir/workloads/generators.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/workloads/generators.cpp.o.d"
  "/root/repo/src/worstcase/builder.cpp" "src/CMakeFiles/cfmerge.dir/worstcase/builder.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/worstcase/builder.cpp.o.d"
  "/root/repo/src/worstcase/interleave.cpp" "src/CMakeFiles/cfmerge.dir/worstcase/interleave.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/worstcase/interleave.cpp.o.d"
  "/root/repo/src/worstcase/predict.cpp" "src/CMakeFiles/cfmerge.dir/worstcase/predict.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/worstcase/predict.cpp.o.d"
  "/root/repo/src/worstcase/sequence.cpp" "src/CMakeFiles/cfmerge.dir/worstcase/sequence.cpp.o" "gcc" "src/CMakeFiles/cfmerge.dir/worstcase/sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
