# Empty compiler generated dependencies file for test_block_context.
# This may be replaced when dependencies are built.
