file(REMOVE_RECURSE
  "CMakeFiles/test_block_context.dir/test_block_context.cpp.o"
  "CMakeFiles/test_block_context.dir/test_block_context.cpp.o.d"
  "test_block_context"
  "test_block_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
