file(REMOVE_RECURSE
  "CMakeFiles/test_block_sort.dir/test_block_sort.cpp.o"
  "CMakeFiles/test_block_sort.dir/test_block_sort.cpp.o.d"
  "test_block_sort"
  "test_block_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
