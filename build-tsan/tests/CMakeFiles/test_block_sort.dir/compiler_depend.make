# Empty compiler generated dependencies file for test_block_sort.
# This may be replaced when dependencies are built.
