file(REMOVE_RECURSE
  "CMakeFiles/test_merge_sort.dir/test_merge_sort.cpp.o"
  "CMakeFiles/test_merge_sort.dir/test_merge_sort.cpp.o.d"
  "test_merge_sort"
  "test_merge_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
