# Empty compiler generated dependencies file for test_merge_sort.
# This may be replaced when dependencies are built.
