file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_exhaustive.dir/test_schedule_exhaustive.cpp.o"
  "CMakeFiles/test_schedule_exhaustive.dir/test_schedule_exhaustive.cpp.o.d"
  "test_schedule_exhaustive"
  "test_schedule_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
