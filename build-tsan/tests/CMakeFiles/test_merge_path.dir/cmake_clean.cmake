file(REMOVE_RECURSE
  "CMakeFiles/test_merge_path.dir/test_merge_path.cpp.o"
  "CMakeFiles/test_merge_path.dir/test_merge_path.cpp.o.d"
  "test_merge_path"
  "test_merge_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
