# Empty compiler generated dependencies file for test_merge_path.
# This may be replaced when dependencies are built.
