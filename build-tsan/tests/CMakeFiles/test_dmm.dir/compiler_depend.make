# Empty compiler generated dependencies file for test_dmm.
# This may be replaced when dependencies are built.
