file(REMOVE_RECURSE
  "CMakeFiles/test_dmm.dir/test_dmm.cpp.o"
  "CMakeFiles/test_dmm.dir/test_dmm.cpp.o.d"
  "test_dmm"
  "test_dmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
