file(REMOVE_RECURSE
  "CMakeFiles/test_pram_model.dir/test_pram_model.cpp.o"
  "CMakeFiles/test_pram_model.dir/test_pram_model.cpp.o.d"
  "test_pram_model"
  "test_pram_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pram_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
