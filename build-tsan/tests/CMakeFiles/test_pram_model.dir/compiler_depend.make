# Empty compiler generated dependencies file for test_pram_model.
# This may be replaced when dependencies are built.
