# Empty dependencies file for test_shared_memory.
# This may be replaced when dependencies are built.
