file(REMOVE_RECURSE
  "CMakeFiles/test_shared_memory.dir/test_shared_memory.cpp.o"
  "CMakeFiles/test_shared_memory.dir/test_shared_memory.cpp.o.d"
  "test_shared_memory"
  "test_shared_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
