file(REMOVE_RECURSE
  "CMakeFiles/test_merge_arrays.dir/test_merge_arrays.cpp.o"
  "CMakeFiles/test_merge_arrays.dir/test_merge_arrays.cpp.o.d"
  "test_merge_arrays"
  "test_merge_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
