# Empty compiler generated dependencies file for test_merge_arrays.
# This may be replaced when dependencies are built.
