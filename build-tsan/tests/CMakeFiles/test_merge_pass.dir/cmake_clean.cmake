file(REMOVE_RECURSE
  "CMakeFiles/test_merge_pass.dir/test_merge_pass.cpp.o"
  "CMakeFiles/test_merge_pass.dir/test_merge_pass.cpp.o.d"
  "test_merge_pass"
  "test_merge_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
