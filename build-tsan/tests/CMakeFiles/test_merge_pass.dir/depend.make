# Empty dependencies file for test_merge_pass.
# This may be replaced when dependencies are built.
