file(REMOVE_RECURSE
  "CMakeFiles/test_key_value.dir/test_key_value.cpp.o"
  "CMakeFiles/test_key_value.dir/test_key_value.cpp.o.d"
  "test_key_value"
  "test_key_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
