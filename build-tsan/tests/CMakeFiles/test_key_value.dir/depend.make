# Empty dependencies file for test_key_value.
# This may be replaced when dependencies are built.
