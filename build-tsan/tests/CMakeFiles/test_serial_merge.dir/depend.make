# Empty dependencies file for test_serial_merge.
# This may be replaced when dependencies are built.
