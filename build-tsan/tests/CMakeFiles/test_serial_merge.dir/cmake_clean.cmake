file(REMOVE_RECURSE
  "CMakeFiles/test_serial_merge.dir/test_serial_merge.cpp.o"
  "CMakeFiles/test_serial_merge.dir/test_serial_merge.cpp.o.d"
  "test_serial_merge"
  "test_serial_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serial_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
