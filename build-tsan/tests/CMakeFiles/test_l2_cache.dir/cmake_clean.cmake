file(REMOVE_RECURSE
  "CMakeFiles/test_l2_cache.dir/test_l2_cache.cpp.o"
  "CMakeFiles/test_l2_cache.dir/test_l2_cache.cpp.o.d"
  "test_l2_cache"
  "test_l2_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l2_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
