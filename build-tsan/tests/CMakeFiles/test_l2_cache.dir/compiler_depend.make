# Empty compiler generated dependencies file for test_l2_cache.
# This may be replaced when dependencies are built.
