# Empty dependencies file for test_occupancy_timing.
# This may be replaced when dependencies are built.
