file(REMOVE_RECURSE
  "CMakeFiles/test_occupancy_timing.dir/test_occupancy_timing.cpp.o"
  "CMakeFiles/test_occupancy_timing.dir/test_occupancy_timing.cpp.o.d"
  "test_occupancy_timing"
  "test_occupancy_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_occupancy_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
