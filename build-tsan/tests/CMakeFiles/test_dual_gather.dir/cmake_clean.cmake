file(REMOVE_RECURSE
  "CMakeFiles/test_dual_gather.dir/test_dual_gather.cpp.o"
  "CMakeFiles/test_dual_gather.dir/test_dual_gather.cpp.o.d"
  "test_dual_gather"
  "test_dual_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
