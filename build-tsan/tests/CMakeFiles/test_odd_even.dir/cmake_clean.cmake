file(REMOVE_RECURSE
  "CMakeFiles/test_odd_even.dir/test_odd_even.cpp.o"
  "CMakeFiles/test_odd_even.dir/test_odd_even.cpp.o.d"
  "test_odd_even"
  "test_odd_even.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_odd_even.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
