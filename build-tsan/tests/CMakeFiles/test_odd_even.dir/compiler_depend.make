# Empty compiler generated dependencies file for test_odd_even.
# This may be replaced when dependencies are built.
