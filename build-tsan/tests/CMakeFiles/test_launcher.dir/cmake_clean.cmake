file(REMOVE_RECURSE
  "CMakeFiles/test_launcher.dir/test_launcher.cpp.o"
  "CMakeFiles/test_launcher.dir/test_launcher.cpp.o.d"
  "test_launcher"
  "test_launcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_launcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
