# Empty compiler generated dependencies file for test_launcher.
# This may be replaced when dependencies are built.
