# Empty dependencies file for test_bitonic.
# This may be replaced when dependencies are built.
