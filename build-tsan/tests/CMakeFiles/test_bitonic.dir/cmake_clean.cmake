file(REMOVE_RECURSE
  "CMakeFiles/test_bitonic.dir/test_bitonic.cpp.o"
  "CMakeFiles/test_bitonic.dir/test_bitonic.cpp.o.d"
  "test_bitonic"
  "test_bitonic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
