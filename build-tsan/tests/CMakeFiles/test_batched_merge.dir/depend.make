# Empty dependencies file for test_batched_merge.
# This may be replaced when dependencies are built.
