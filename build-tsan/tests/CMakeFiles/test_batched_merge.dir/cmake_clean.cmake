file(REMOVE_RECURSE
  "CMakeFiles/test_batched_merge.dir/test_batched_merge.cpp.o"
  "CMakeFiles/test_batched_merge.dir/test_batched_merge.cpp.o.d"
  "test_batched_merge"
  "test_batched_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
