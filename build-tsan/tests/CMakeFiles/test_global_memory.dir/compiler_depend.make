# Empty compiler generated dependencies file for test_global_memory.
# This may be replaced when dependencies are built.
