file(REMOVE_RECURSE
  "CMakeFiles/test_global_memory.dir/test_global_memory.cpp.o"
  "CMakeFiles/test_global_memory.dir/test_global_memory.cpp.o.d"
  "test_global_memory"
  "test_global_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
