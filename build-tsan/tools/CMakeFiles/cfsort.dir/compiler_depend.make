# Empty compiler generated dependencies file for cfsort.
# This may be replaced when dependencies are built.
