file(REMOVE_RECURSE
  "CMakeFiles/cfsort.dir/cfsort.cpp.o"
  "CMakeFiles/cfsort.dir/cfsort.cpp.o.d"
  "cfsort"
  "cfsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
