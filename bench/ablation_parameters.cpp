// Ablation studies around the paper's design choices:
//
//  1. Non-coprime E: the paper notes Thrust is "much worse" when gcd(w,E)>1
//     (that is why Thrust picks E in {15, 17}); CF-Merge is insensitive.
//  2. rho on/off: disabling the circular shift (Section 3.2) brings merge
//     conflicts back for non-coprime E.
//  3. CF output scatter: with gcd(w,E)>1 the stride-E register->shared
//     output write conflicts unless routed through rho (footnote 5).
//  4. Occupancy sweep over u for fixed E.
#include <cstdio>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/profile.hpp"
#include "analysis/table.hpp"

using namespace cfmerge;

namespace {

analysis::SortPoint run(gpusim::Launcher& launcher, int e, int u, sort::Variant v,
                        workloads::Distribution dist, bool disable_rho,
                        bool cf_output_scatter, std::int64_t tiles, int reps) {
  workloads::WorkloadSpec spec;
  spec.dist = dist;
  spec.n = tiles * u * e;
  spec.w = launcher.device().warp_size;
  spec.e = e;
  spec.u = u;
  sort::MergeConfig cfg;
  cfg.e = e;
  cfg.u = u;
  cfg.variant = v;
  cfg.disable_rho = disable_rho;
  cfg.cf_output_scatter = cf_output_scatter;
  return analysis::run_sort_point(launcher, spec, cfg, reps);
}

}  // namespace

int main(int argc, char** argv) {
  const auto sweep = analysis::SweepConfig::from_args(argc, argv);
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(4));
  const std::int64_t tiles = 32;

  std::printf("Ablation 1: E coprime vs non-coprime with w = 32 (u = 512, random)\n");
  {
    analysis::Table t("E sweep");
    t.set_header({"E", "gcd(32,E)", "thrust e/us", "thrust conf/acc", "cf e/us",
                  "cf merge conf"});
    for (const int e : {12, 14, 15, 16, 17, 18, 20, 24}) {
      const auto base = run(launcher, e, 512, sort::Variant::Baseline,
                            workloads::Distribution::UniformRandom, false, true, tiles,
                            sweep.reps);
      const auto cf = run(launcher, e, 512, sort::Variant::CFMerge,
                          workloads::Distribution::UniformRandom, false, true, tiles,
                          sweep.reps);
      t.add_row({std::to_string(e), std::to_string(numtheory::gcd(32, e)),
                 analysis::Table::num(base.throughput, 1),
                 analysis::Table::num(base.merge_conflicts_per_access, 2),
                 analysis::Table::num(cf.throughput, 1),
                 std::to_string(cf.merge_conflicts)});
    }
    t.print(std::cout);
  }

  std::printf("\nAblation 2: the circular shift rho (non-coprime E = 16)\n");
  {
    analysis::Table t("rho on/off");
    t.set_header({"config", "merge conflicts", "conflicts/access", "e/us"});
    const auto off = run(launcher, 16, 512, sort::Variant::CFMerge,
                         workloads::Distribution::UniformRandom, true, true, tiles,
                         sweep.reps);
    const auto on = run(launcher, 16, 512, sort::Variant::CFMerge,
                        workloads::Distribution::UniformRandom, false, true, tiles,
                        sweep.reps);
    t.add_row({"pi only (rho disabled)", std::to_string(off.merge_conflicts),
               analysis::Table::num(off.merge_conflicts_per_access, 2),
               analysis::Table::num(off.throughput, 1)});
    t.add_row({"pi + rho (full CF-Merge)", std::to_string(on.merge_conflicts),
               analysis::Table::num(on.merge_conflicts_per_access, 2),
               analysis::Table::num(on.throughput, 1)});
    t.print(std::cout);
  }

  std::printf("\nAblation 3: CF output scatter through rho (E = 16)\n");
  {
    analysis::Table t("output scatter");
    t.set_header({"config", "store-phase conflicts", "e/us"});
    for (const bool scatter : {false, true}) {
      workloads::WorkloadSpec spec;
      spec.dist = workloads::Distribution::UniformRandom;
      spec.n = tiles * 512 * 16;
      spec.seed = sweep.seed;
      sort::MergeConfig cfg;
      cfg.e = 16;
      cfg.u = 512;
      cfg.variant = sort::Variant::CFMerge;
      cfg.cf_output_scatter = scatter;
      std::vector<std::int32_t> data = workloads::generate(spec);
      const auto report = sort::merge_sort(launcher, data, cfg);
      std::uint64_t store_conf = 0;
      for (const auto& [name, c] : report.phases.phases())
        if (name == "merge.store") store_conf = c.bank_conflicts;
      t.add_row({scatter ? "dual scatter (rho)" : "stride-E store",
                 std::to_string(store_conf),
                 analysis::Table::num(report.throughput(), 1)});
    }
    t.print(std::cout);
  }

  std::printf("\nAblation 5 (extension): CF gather inside the block-sort rounds\n");
  {
    analysis::Table t("cf_blocksort on/off (E = 15, u = 512, random inputs)");
    t.set_header({"config", "bsort merge conflicts", "bsort occupancy", "e/us"});
    for (const bool on : {false, true}) {
      workloads::WorkloadSpec spec;
      spec.dist = workloads::Distribution::UniformRandom;
      spec.n = tiles * 512 * 15;
      spec.seed = sweep.seed;
      sort::MergeConfig cfg;
      cfg.e = 15;
      cfg.u = 512;
      cfg.variant = sort::Variant::CFMerge;
      cfg.cf_blocksort = on;
      std::vector<std::int32_t> data = workloads::generate(spec);
      const auto report = sort::merge_sort(launcher, data, cfg);
      std::uint64_t bsort_conf = 0;
      for (const auto& [name, c] : report.phases.phases())
        if (name == "bsort.merge") bsort_conf = c.bank_conflicts;
      double occ = 0.0;
      for (const auto& k : report.kernels)
        if (k.name == "block_sort") occ = k.timing.occupancy.occupancy;
      t.add_row({on ? "CF block-sort rounds (staged)" : "serial block-sort rounds",
                 std::to_string(bsort_conf), analysis::Table::num(occ, 2),
                 analysis::Table::num(report.throughput(), 1)});
    }
    t.print(std::cout);
    std::printf("(the staging buffer halves occupancy — the overhead-vs-conflicts\n"
                " trade-off of Section 2; the paper leaves the block sort untouched)\n");
  }

  std::printf("\nAblation 4: thread-block size u (E = 15, random, occupancy effect)\n");
  {
    analysis::Table t("u sweep");
    t.set_header({"u", "merge-kernel occupancy", "thrust e/us", "cf e/us"});
    for (const int u : {128, 256, 512, 1024}) {
      workloads::WorkloadSpec spec;
      spec.dist = workloads::Distribution::UniformRandom;
      spec.n = tiles * 512 * 15;  // constant n across u
      spec.seed = sweep.seed;
      double occ = 0.0, base_tp = 0.0, cf_tp = 0.0;
      for (const auto variant : {sort::Variant::Baseline, sort::Variant::CFMerge}) {
        sort::MergeConfig cfg;
        cfg.e = 15;
        cfg.u = u;
        cfg.variant = variant;
        std::vector<std::int32_t> data = workloads::generate(spec);
        const auto report = sort::merge_sort(launcher, data, cfg);
        for (const auto& k : report.kernels)
          if (k.name == "merge_pass") occ = k.timing.occupancy.occupancy;
        (variant == sort::Variant::Baseline ? base_tp : cf_tp) = report.throughput();
      }
      t.add_row({std::to_string(u), analysis::Table::num(occ, 2),
                 analysis::Table::num(base_tp, 1), analysis::Table::num(cf_tp, 1)});
    }
    t.print(std::cout);
  }
  return 0;
}
