// Portability sweep: the paper parameterizes everything by the warp width /
// bank count w (footnote 3 notes they coincide on all modern NVIDIA GPUs).
// This harness runs the full pipeline on simulated devices with different w
// (and on the Turing preset) to show the CF guarantee and the worst-case
// construction are w-independent — the generalization Section 4 closes.
#include <cstdio>
#include <iostream>
#include <random>

#include "analysis/table.hpp"
#include "gpusim/launcher.hpp"
#include "sort/merge_sort.hpp"
#include "worstcase/builder.hpp"
#include "worstcase/predict.hpp"

using namespace cfmerge;

namespace {

struct DeviceCase {
  gpusim::DeviceSpec dev;
  int e;
  int u;
};

}  // namespace

int main() {
  std::printf("Warp-width portability: CF-Merge on devices with different w\n\n");

  std::vector<DeviceCase> cases;
  cases.push_back({gpusim::DeviceSpec::tiny(8, 4), 5, 16});    // hypothetical w=8
  cases.push_back({gpusim::DeviceSpec::tiny(8, 4), 6, 16});    // w=8, non-coprime
  cases.push_back({gpusim::DeviceSpec::tiny(16, 4), 12, 32});  // w=16, d=4
  cases.push_back({gpusim::DeviceSpec::scaled_turing(4), 15, 512});
  cases.push_back({gpusim::DeviceSpec::scaled_turing(4), 16, 512});  // d=16

  analysis::Table t("per-device results (worst-case inputs, 16 tiles)");
  t.set_header({"device", "w", "E", "d", "thrust conf/acc", "cf merge conf",
                "thrust e/us", "cf e/us", "cf speedup"});
  for (auto& c : cases) {
    gpusim::Launcher launcher(c.dev);
    const int w = c.dev.warp_size;
    const std::int64_t n = 16LL * c.u * c.e;
    const worstcase::Params p{w, c.e};
    const auto input32 = worstcase::worst_case_sort_input(p, c.u, n);

    double tp[2] = {0, 0};
    double conf_per_acc = 0;
    std::uint64_t cf_conf = 1;
    for (const auto variant : {sort::Variant::Baseline, sort::Variant::CFMerge}) {
      sort::MergeConfig cfg;
      cfg.e = c.e;
      cfg.u = c.u;
      cfg.variant = variant;
      std::vector<int> data(input32.begin(), input32.end());
      const auto report = sort::merge_sort(launcher, data, cfg);
      if (!std::is_sorted(data.begin(), data.end())) {
        std::fprintf(stderr, "sort failed on %s!\n", c.dev.name.c_str());
        return 1;
      }
      if (variant == sort::Variant::Baseline) {
        tp[0] = report.throughput();
        conf_per_acc = report.merge_shared_accesses() > 0
                           ? static_cast<double>(report.merge_conflicts()) /
                                 static_cast<double>(report.merge_shared_accesses())
                           : 0.0;
      } else {
        tp[1] = report.throughput();
        cf_conf = report.merge_conflicts();
      }
    }
    t.add_row({c.dev.name, std::to_string(w), std::to_string(c.e),
               std::to_string(numtheory::gcd(w, c.e)), analysis::Table::num(conf_per_acc, 2),
               std::to_string(cf_conf), analysis::Table::num(tp[0], 1),
               analysis::Table::num(tp[1], 1), analysis::Table::num(tp[1] / tp[0], 3)});
  }
  t.print(std::cout);
  std::printf("\nCF-Merge's merge conflicts are 0 for every w and every gcd(w,E) —\n"
              "the construction is fully parameterized by w, as the paper proves.\n");
  return 0;
}
