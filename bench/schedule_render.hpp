// Shared rendering helpers for the schedule-visualization harnesses
// (Figures 2, 3, 7 and 8 of the paper): prints the shared memory bank
// matrix with each cell labeled by the thread that reads it, and marks the
// cells read in a given round.
#pragma once

#include <cstdio>
#include <random>
#include <vector>

#include "gather/schedule.hpp"
#include "gather/validator.hpp"

namespace cfmerge::benchviz {

struct ScheduleViz {
  gather::GatherShape shape;
  std::vector<std::int64_t> a_off;
  std::vector<std::int64_t> a_size;

  static ScheduleViz random(int w, int e, int u, std::uint64_t seed) {
    ScheduleViz v;
    std::mt19937_64 rng(seed);
    v.a_off.resize(static_cast<std::size_t>(u));
    v.a_size.resize(static_cast<std::size_t>(u));
    std::int64_t la = 0;
    for (int i = 0; i < u; ++i) {
      v.a_off[static_cast<std::size_t>(i)] = la;
      v.a_size[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(rng() % (e + 1));
      la += v.a_size[static_cast<std::size_t>(i)];
    }
    v.shape = gather::GatherShape{w, e, u, la, static_cast<std::int64_t>(u) * e - la};
    return v;
  }

  /// Prints one round: the w x (total/w) bank matrix; every cell shows the
  /// thread that reads it at some round, '[..]' marks this round's cells,
  /// 'A'/'B' shows the source list.
  void print_round(int round) const {
    gather::RoundSchedule sched(shape, a_off, a_size);
    const std::int64_t total = shape.total();
    const std::int64_t cols = total / shape.w;
    std::vector<int> owner(static_cast<std::size_t>(total), -1);
    std::vector<char> list(static_cast<std::size_t>(total), '?');
    std::vector<char> now(static_cast<std::size_t>(total), 0);
    for (int i = 0; i < shape.u; ++i) {
      for (int j = 0; j < shape.e; ++j) {
        const gather::GatherRead r = sched.read(i, j);
        owner[static_cast<std::size_t>(r.phys)] = i;
        list[static_cast<std::size_t>(r.phys)] = r.from_a ? 'A' : 'B';
        if (j == round) now[static_cast<std::size_t>(r.phys)] = 1;
      }
    }
    std::printf("round %d:\n", round);
    for (int bank = 0; bank < shape.w; ++bank) {
      std::printf("%3d: ", bank);
      for (std::int64_t c = 0; c < cols; ++c) {
        const std::int64_t pos = c * shape.w + bank;
        const auto idx = static_cast<std::size_t>(pos);
        std::printf(now[idx] ? "[%2d%c]" : " %2d%c ", owner[idx], list[idx]);
      }
      std::printf("\n");
    }
  }

  /// Validates and prints the verdict (the figures' "no conflicts" claim).
  void print_validation() const {
    gather::RoundSchedule sched(shape, a_off, a_size);
    const auto res = gather::validate_schedule(sched);
    std::printf("validation: %s (max conflicts per access: %d, total: %lld)\n\n",
                res.ok ? "BANK CONFLICT FREE" : res.error.c_str(), res.max_conflicts,
                static_cast<long long>(res.total_conflicts));
  }
};

}  // namespace cfmerge::benchviz
