// Segmented-sort throughput harness: graph overlap vs. serial execution.
//
//   segmented_throughput [--segments=N] [--n=TOTAL] [--threads=T]
//
// Builds a request batch of --segments pseudo-random-sized segments
// (--n total elements), sorts it with sort::segmented_sort, and reports,
// per segment count:
//
//   * the serial kernel sum (sorting every segment back to back — the
//     pre-graph launch cadence),
//   * the graph makespan (independent segment chains overlap; the
//     critical path is the slowest segment),
//   * the overlap speedup and the aggregate throughput under both models,
//   * host wall-clock for GraphExec::Serial vs. GraphExec::Overlap, plus a
//     bit-identity check between the two modes' reports (the executor's
//     determinism contract).
//
// The simulated numbers are independent of --threads and of the host
// execution mode by construction; only wall-clock changes.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <random>
#include <vector>

#include "analysis/table.hpp"
#include "sort/segmented_sort.hpp"

using namespace cfmerge;

namespace {

std::vector<std::vector<int>> make_batch(int segments, std::int64_t total,
                                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> weights(static_cast<std::size_t>(segments));
  double wsum = 0.0;
  for (auto& w : weights) {
    w = 1.0 + static_cast<double>(rng() % 1000);
    wsum += w;
  }
  std::vector<std::vector<int>> batch;
  batch.reserve(weights.size());
  std::int64_t used = 0;
  for (int s = 0; s < segments; ++s) {
    const std::int64_t len =
        s + 1 == segments
            ? total - used
            : std::min<std::int64_t>(
                  total - used,
                  static_cast<std::int64_t>(weights[static_cast<std::size_t>(s)] / wsum *
                                            static_cast<double>(total)));
    std::vector<int> seg(static_cast<std::size_t>(len));
    for (auto& x : seg) x = static_cast<int>(rng());
    batch.push_back(std::move(seg));
    used += len;
  }
  return batch;
}

struct Run {
  sort::SegmentedSortReport report;
  double wall_ms = 0.0;
};

Run run_once(std::vector<std::vector<int>> batch, const sort::MergeConfig& cfg,
             int threads, gpusim::GraphExec mode) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(4));
  launcher.set_threads(threads);
  Run r;
  const auto t0 = std::chrono::steady_clock::now();
  r.report = sort::segmented_sort(launcher, batch, cfg, mode);
  const auto t1 = std::chrono::steady_clock::now();
  for (const auto& seg : batch)
    if (!std::is_sorted(seg.begin(), seg.end())) std::abort();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return r;
}

bool reports_identical(const sort::SegmentedSortReport& a,
                       const sort::SegmentedSortReport& b) {
  if (!(a.totals == b.totals && a.phases == b.phases &&
        a.serial_microseconds == b.serial_microseconds &&
        a.makespan_microseconds == b.makespan_microseconds &&
        a.kernels.size() == b.kernels.size()))
    return false;
  for (std::size_t k = 0; k < a.kernels.size(); ++k)
    if (a.kernels[k].timing.microseconds != b.kernels[k].timing.microseconds) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int max_segments = 32;
  std::int64_t total = 512 * 15 * 64;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    std::sscanf(argv[i], "--segments=%d", &max_segments);
    std::sscanf(argv[i], "--n=%lld", &total);
    std::sscanf(argv[i], "--threads=%d", &threads);
  }

  sort::MergeConfig cfg;
  cfg.e = 15;
  cfg.u = 512;
  cfg.variant = sort::Variant::CFMerge;

  std::printf("Segmented sort throughput: CF-Merge, %lld elements total,\n"
              "pseudo-random segment sizes (seed 7)\n\n",
              static_cast<long long>(total));

  analysis::Table t("graph overlap vs serial launch cadence");
  t.set_header({"segments", "serial (us)", "makespan (us)", "overlap", "elem/us",
                "wall serial (ms)", "wall overlap (ms)", "bit-identical"});
  for (int segments = 1; segments <= max_segments; segments *= 2) {
    const auto batch = make_batch(segments, total, 7);
    const Run serial = run_once(batch, cfg, threads, gpusim::GraphExec::Serial);
    const Run overlap = run_once(batch, cfg, threads, gpusim::GraphExec::Overlap);
    const bool identical = reports_identical(serial.report, overlap.report);
    t.add_row({std::to_string(segments),
               analysis::Table::num(overlap.report.serial_microseconds, 1),
               analysis::Table::num(overlap.report.makespan_microseconds, 1),
               analysis::Table::num(overlap.report.overlap_speedup(), 2),
               analysis::Table::num(overlap.report.throughput(), 1),
               analysis::Table::num(serial.wall_ms, 1),
               analysis::Table::num(overlap.wall_ms, 1), identical ? "yes" : "NO (BUG)"});
    if (!identical) {
      std::fprintf(stderr,
                   "segmented_throughput: serial and overlap reports diverged at %d segments\n",
                   segments);
      return 1;
    }
  }
  t.print(std::cout);

  std::printf("\nThe makespan is the slowest segment's chain: more (smaller)\n"
              "segments -> shorter critical path -> higher overlap speedup, up\n"
              "to the skew of the pseudo-random segment sizes.  Simulated\n"
              "numbers are identical across modes and --threads by\n"
              "construction; see docs/architecture.md.\n");
  return 0;
}
