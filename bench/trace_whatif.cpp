// Trace-driven what-if analysis: record the actual shared-memory accesses of
// a full baseline sort (random and worst-case inputs) and replay them under
// alternative bank mappings — answering, with real traces rather than
// idealized schedules, whether generic DMM contention resolution could have
// substituted for the dedicated CF algorithm.
#include <cstdio>
#include <iostream>
#include <random>

#include "analysis/table.hpp"
#include "analysis/trace_replay.hpp"
#include "gpusim/launcher.hpp"
#include "sort/merge_sort.hpp"
#include "worstcase/builder.hpp"

using namespace cfmerge;

namespace {

void analyze(const char* label, gpusim::Launcher& launcher, std::vector<int> data,
             sort::Variant variant, int e, int u) {
  gpusim::TraceSink sink;
  launcher.set_trace(&sink);
  sort::MergeConfig cfg;
  cfg.e = e;
  cfg.u = u;
  cfg.variant = variant;
  const auto report = sort::merge_sort(launcher, data, cfg);
  launcher.set_trace(nullptr);
  if (!std::is_sorted(data.begin(), data.end())) {
    std::fprintf(stderr, "sort failed\n");
    std::exit(1);
  }

  std::printf("%s: %zu traced accesses, merge-phase conflicts (direct map): %llu\n", label,
              sink.size(), static_cast<unsigned long long>(report.merge_conflicts()));
  analysis::Table t(std::string(label) + " — merge.merge phase under each mapping");
  t.set_header({"mapping", "accesses", "conflicts", "conflicts/access", "max congestion",
                "index-arith ops"});
  for (const auto& r : analysis::replay_standard_mappings(
           sink, launcher.device().warp_size, "merge.merge")) {
    t.add_row({r.mapping, std::to_string(r.shared_accesses),
               std::to_string(r.total_conflicts),
               analysis::Table::num(r.conflicts_per_access(), 3),
               std::to_string(r.max_congestion), std::to_string(r.mapping_overhead_ops)});
  }
  t.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  const int e = 15, u = 512;
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(4));
  const int w = launcher.device().warp_size;
  const std::int64_t n = 8LL * u * e;

  std::printf("Trace-driven what-if: real sort traces replayed under DMM mappings\n\n");

  std::mt19937_64 rng(9);
  std::vector<int> random_input(static_cast<std::size_t>(n));
  for (auto& x : random_input) x = static_cast<int>(rng());
  analyze("baseline, random input", launcher, random_input, sort::Variant::Baseline, e, u);

  const auto worst32 = worstcase::worst_case_sort_input(worstcase::Params{w, e}, u, n);
  analyze("baseline, worst-case input", launcher,
          std::vector<int>(worst32.begin(), worst32.end()), sort::Variant::Baseline, e, u);

  analyze("CF-Merge, worst-case input", launcher,
          std::vector<int>(worst32.begin(), worst32.end()), sort::Variant::CFMerge, e, u);

  std::printf(
      "Takeaway: hashing/skewing dampen the adversarial congestion but keep a\n"
      "residual 1-3 conflicts per access and add per-access index arithmetic;\n"
      "only the dedicated gather reaches zero — with zero overhead (and it\n"
      "is deterministic, which the randomized simulations are not).\n");
  return 0;
}
