// Figure 3 reproduction: the CF-Merge gather schedule for w = 9, E = 6,
// d = 3 (non-coprime).  The rho circular shift realigns the three
// partitions of wE/d = 18 elements; without it the rounds conflict.
#include <cstdio>

#include "gpusim/shared_memory.hpp"
#include "schedule_render.hpp"

using namespace cfmerge;

int main() {
  std::printf("Figure 3: CF gather schedule, w=9 E=6 d=3 (non-coprime), one warp\n");
  std::printf("partitions of wE/d = 18 elements are circularly shifted by 0, 1, 2\n\n");
  auto viz = benchviz::ScheduleViz::random(9, 6, 9, /*seed=*/2025);
  for (int j = 0; j < 6; ++j) viz.print_round(j);
  viz.print_validation();

  // Ablation: the same shape without rho conflicts in every round.
  std::printf("without the circular shift rho (Section 3.1 scheme only):\n");
  gather::RoundSchedule sched(viz.shape, viz.a_off, viz.a_size);
  std::int64_t conflicts = 0;
  std::vector<std::int64_t> addrs(9);
  for (int j = 0; j < 6; ++j) {
    for (int lane = 0; lane < 9; ++lane)
      addrs[static_cast<std::size_t>(lane)] = sched.read(lane, j).raw;  // skip rho
    conflicts += gpusim::shared_access_cost(addrs, 9).conflicts;
  }
  std::printf("  total conflicts over E=6 rounds: %lld (vs 0 with rho)\n",
              static_cast<long long>(conflicts));
  return 0;
}
