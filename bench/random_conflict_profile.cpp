// Section 5 claim profile (the nvprof replacement):
//  * Karsin et al.: random inputs cause a small constant (2-3) bank
//    conflicts per step in the baseline merge;
//  * Berney & Sitchinava: worst-case inputs approach the trivial bound;
//  * CF-Merge: zero conflicts during merging on every input.
#include <cstdio>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/profile.hpp"
#include "analysis/table.hpp"

using namespace cfmerge;

int main(int argc, char** argv) {
  const auto sweep = analysis::SweepConfig::from_args(argc, argv);
  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  const int w = launcher.device().warp_size;

  std::printf("Merge-phase bank conflict profile (per warp-wide access), w = %d\n", w);
  std::printf("paper/Karsin: random ~2-3 per step; CF-Merge: 0 on all inputs\n\n");

  analysis::Table table("conflicts per merge access");
  table.set_header({"E", "u", "distribution", "variant", "merge conflicts",
                    "conflicts/access", "conflicts/element/pass"});

  const std::int64_t tiles = 16;
  for (const auto& [e, u] : {std::pair{15, 512}, std::pair{17, 256}}) {
    for (const auto dist : {workloads::Distribution::UniformRandom,
                            workloads::Distribution::Sorted,
                            workloads::Distribution::Reverse,
                            workloads::Distribution::FewDistinct,
                            workloads::Distribution::WorstCase}) {
      workloads::WorkloadSpec spec;
      spec.dist = dist;
      spec.n = tiles * u * e;
      spec.w = w;
      spec.e = e;
      spec.u = u;
      spec.seed = sweep.seed;
      for (const auto variant : {sort::Variant::Baseline, sort::Variant::CFMerge}) {
        sort::MergeConfig cfg;
        cfg.e = e;
        cfg.u = u;
        cfg.variant = variant;
        std::vector<std::int32_t> data = workloads::generate(spec);
        const auto report = sort::merge_sort(launcher, data, cfg);
        table.add_row(
            {std::to_string(e), std::to_string(u), workloads::distribution_name(dist),
             variant == sort::Variant::Baseline ? "thrust" : "cf-merge",
             std::to_string(report.merge_conflicts()),
             analysis::Table::num(analysis::merge_conflicts_per_access(report), 3),
             analysis::Table::num(analysis::merge_conflicts_per_element_pass(report), 3)});
      }
    }
  }
  table.print(std::cout);

  // Detailed per-phase breakdown for the headline configuration.
  std::printf("\nper-phase profile, E=15 u=512, uniform random, baseline:\n");
  {
    workloads::WorkloadSpec spec;
    spec.dist = workloads::Distribution::UniformRandom;
    spec.n = tiles * 512 * 15;
    spec.seed = sweep.seed;
    sort::MergeConfig cfg;
    cfg.e = 15;
    cfg.u = 512;
    cfg.variant = sort::Variant::Baseline;
    std::vector<std::int32_t> data = workloads::generate(spec);
    const auto report = sort::merge_sort(launcher, data, cfg);
    analysis::print_phase_profile(std::cout, report.phases, report.n_padded);
  }
  std::printf("\nper-phase profile, E=15 u=512, worst-case, cf-merge:\n");
  {
    workloads::WorkloadSpec spec;
    spec.dist = workloads::Distribution::WorstCase;
    spec.n = tiles * 512 * 15;
    spec.w = w;
    spec.e = 15;
    spec.u = 512;
    sort::MergeConfig cfg;
    cfg.e = 15;
    cfg.u = 512;
    cfg.variant = sort::Variant::CFMerge;
    std::vector<std::int32_t> data = workloads::generate(spec);
    const auto report = sort::merge_sort(launcher, data, cfg);
    analysis::print_phase_profile(std::cout, report.phases, report.n_padded);
  }
  return 0;
}
