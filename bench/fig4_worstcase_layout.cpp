// Figure 4 reproduction: the generalized worst-case inputs for w = 12 with
// E = 5 (coprime) and E = 9 (non-coprime).  Prints the bank matrix labeled
// with the thread that reads each cell during the baseline sequential merge
// and reports how the per-thread scans align in the last E banks.
#include <cstdio>
#include <vector>

#include "worstcase/predict.hpp"
#include "worstcase/sequence.hpp"

using namespace cfmerge;
using namespace cfmerge::worstcase;

namespace {

void print_layout(const Params& p) {
  const auto tuples = warp_tuples(p, false);
  const std::int64_t wE = static_cast<std::int64_t>(p.w) * p.e;
  const std::int64_t la = a_total(tuples);
  // Thread that reads each shared position: A at [0, la), B at [la, wE).
  std::vector<int> owner(static_cast<std::size_t>(wE), -1);
  std::int64_t ao = 0, bo = 0;
  for (int i = 0; i < p.w; ++i) {
    const Tuple& t = tuples[static_cast<std::size_t>(i)];
    for (std::int64_t x = 0; x < t.a; ++x) owner[static_cast<std::size_t>(ao + x)] = i;
    for (std::int64_t y = 0; y < t.b; ++y) owner[static_cast<std::size_t>(la + bo + y)] = i;
    ao += t.a;
    bo += t.b;
  }
  std::printf("w=%d E=%d (d=%lld, q=%lld, r=%lld): |A|=%lld |B|=%lld\n", p.w, p.e,
              static_cast<long long>(p.d()), static_cast<long long>(p.q()),
              static_cast<long long>(p.r()), static_cast<long long>(la),
              static_cast<long long>(wE - la));
  std::printf("tuples (a_i, b_i): ");
  for (const Tuple& t : tuples)
    std::printf("(%lld,%lld) ", static_cast<long long>(t.a), static_cast<long long>(t.b));
  std::printf("\n");
  const std::int64_t cols = wE / p.w;
  for (int bank = 0; bank < p.w; ++bank) {
    const bool hot = bank >= p.w - p.e;
    std::printf("%3d%s ", bank, hot ? "*" : ":");
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::int64_t pos = c * p.w + bank;
      std::printf("%3d%c", owner[static_cast<std::size_t>(pos)],
                  pos < la ? 'A' : 'B');
    }
    std::printf("\n");
  }
  std::printf("(* = one of the last E banks, where the theorem counts conflicts)\n");
  std::printf("Theorem 8 predicted conflicts per warp: %lld (trivial bound %lld)\n\n",
              static_cast<long long>(predicted_warp_conflicts(p)),
              static_cast<long long>(trivial_warp_conflict_bound(p)));
}

}  // namespace

int main() {
  std::printf("Figure 4: generalized worst-case inputs for Thrust mergesort, w = 12\n\n");
  print_layout(Params{12, 5});  // coprime (left panel)
  print_layout(Params{12, 9});  // non-coprime (right panel)
  return 0;
}
