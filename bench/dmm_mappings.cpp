// Section 2 quantified: general DMM contention-resolution mappings vs the
// dedicated bank conflict free algorithm.
//
// The paper argues that the general techniques from the granularity-of-
// parallel-memories literature (hashing, skewing) are impractical for
// high-performance kernels, and that dedicated CF algorithms are the way.
// This harness measures, for the access schedules that actually occur in
// the mergesort (worst-case sequential merge steps and the CF gather),
// the congestion delay + per-access arithmetic overhead of each mapping.
#include <cstdio>
#include <iostream>
#include <memory>
#include <random>
#include <vector>

#include "analysis/table.hpp"
#include "dmm/dmm.hpp"
#include "gather/schedule.hpp"
#include "worstcase/builder.hpp"
#include "worstcase/predict.hpp"

using namespace cfmerge;
using namespace cfmerge::dmm;

namespace {

// The baseline's worst-case sequential-merge schedule for one warp:
// step s = the addresses the w threads fetch at merge step s (modeled as
// each thread scanning its tuple run; the real data-dependent schedule is
// measured in thm8_predicted_vs_measured — this is the idealized aligned
// scan the construction aims for).
std::vector<std::vector<std::int64_t>> worst_case_scan_schedule(const worstcase::Params& p) {
  const auto tuples = worstcase::warp_tuples(p, false);
  const std::int64_t la = worstcase::a_total(tuples);
  std::vector<std::int64_t> a_start(tuples.size()), b_start(tuples.size());
  std::int64_t ao = 0, bo = 0;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    a_start[i] = ao;
    b_start[i] = la + bo;
    ao += tuples[i].a;
    bo += tuples[i].b;
  }
  std::vector<std::vector<std::int64_t>> schedule(static_cast<std::size_t>(p.e));
  for (int s = 0; s < p.e; ++s) {
    auto& step = schedule[static_cast<std::size_t>(s)];
    step.resize(tuples.size(), -1);
    for (std::size_t i = 0; i < tuples.size(); ++i) {
      // Thread i reads its s-th element: from A while s < a_i, then from B.
      if (s < tuples[i].a)
        step[i] = a_start[i] + s;
      else
        step[i] = b_start[i] + (s - tuples[i].a);
    }
  }
  return schedule;
}

// The CF gather schedule for one warp, random split.
std::vector<std::vector<std::int64_t>> gather_schedule(int w, int e, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::int64_t> off(static_cast<std::size_t>(w)), sz(static_cast<std::size_t>(w));
  std::int64_t la = 0;
  for (int i = 0; i < w; ++i) {
    off[static_cast<std::size_t>(i)] = la;
    sz[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(rng() % (e + 1));
    la += sz[static_cast<std::size_t>(i)];
  }
  gather::GatherShape shape{w, e, w, la, static_cast<std::int64_t>(w) * e - la};
  gather::RoundSchedule sched(shape, off, sz);
  std::vector<std::vector<std::int64_t>> schedule(static_cast<std::size_t>(e));
  for (int j = 0; j < e; ++j) {
    auto& step = schedule[static_cast<std::size_t>(j)];
    step.resize(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) step[static_cast<std::size_t>(i)] = sched.read(i, j).phys;
  }
  return schedule;
}

void report(const char* title, const std::vector<std::vector<std::int64_t>>& schedule,
            int w) {
  analysis::Table t(title);
  t.set_header({"mapping", "PRAM steps", "delay", "slowdown", "max congestion",
                "index-arith ops"});
  std::vector<std::unique_ptr<ModuleMap>> maps;
  maps.push_back(std::make_unique<DirectMap>(w));
  maps.push_back(std::make_unique<OffsetMap>(w, 1));
  maps.push_back(std::make_unique<UniversalHashMap>(w, 42));
  for (const auto& m : maps) {
    const auto cost =
        schedule_cost(*m, std::span<const std::vector<std::int64_t>>(schedule));
    t.add_row({m->name(), std::to_string(cost.ideal_steps),
               std::to_string(cost.total_delay), analysis::Table::num(cost.slowdown(), 2),
               std::to_string(cost.max_congestion), std::to_string(cost.overhead_ops)});
  }
  t.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("DMM contention resolution vs the dedicated CF algorithm (Section 2)\n\n");

  for (const int e : {15, 16}) {
    const worstcase::Params p{32, e};
    std::printf("-- baseline worst-case merge scan, w=32, E=%d (Theorem 8 predicts %lld "
                "conflicts)\n",
                e, static_cast<long long>(worstcase::predicted_warp_conflicts(p)));
    report("worst-case scan under each mapping", worst_case_scan_schedule(p), 32);
  }

  std::printf("-- CF gather (Algorithm 1), w=32, E=15 and the non-coprime E=16\n");
  report("gather schedule, E=15", gather_schedule(32, 15, 7), 32);
  report("gather schedule, E=16", gather_schedule(32, 16, 7), 32);

  std::printf(
      "Reading the tables: universal hashing tames the adversarial scan's\n"
      "congestion but pays index arithmetic on *every* access and still is\n"
      "not conflict free; the dedicated gather is congestion-1 (PRAM) with\n"
      "zero mapping overhead — the paper's case for CF algorithm design.\n");
  return 0;
}
