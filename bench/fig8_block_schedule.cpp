// Figure 8 reproduction: the thread-block schedule for u = 18, w = 6,
// E = 4, d = 2.  Two partitions of wE/d = 12 elements per warp are
// circularly shifted by 0 and 1; all three warps access conflict free.
#include <cstdio>

#include "schedule_render.hpp"

using namespace cfmerge;

int main() {
  std::printf("Figure 8: CF gather schedule for a thread block, u=18 w=6 E=4 d=2\n");
  std::printf("warps: threads {0..5}, {6..11}, {12..17}\n\n");
  auto viz = benchviz::ScheduleViz::random(6, 4, 18, /*seed=*/88);
  for (int j = 0; j < 4; ++j) viz.print_round(j);
  viz.print_validation();

  // Larger blocks with the same non-coprime structure.
  for (const auto& [w, e, u] :
       {std::tuple{8, 6, 32}, std::tuple{32, 24, 128}, std::tuple{32, 16, 256}}) {
    auto big = benchviz::ScheduleViz::random(w, e, u, 3);
    gather::RoundSchedule sched(big.shape, big.a_off, big.a_size);
    const auto res = gather::validate_schedule(sched);
    std::printf("w=%d E=%d u=%d (d=%d): %s\n", w, e, u, big.shape.d(),
                res.ok ? "bank conflict free" : res.error.c_str());
  }
  return 0;
}
