// google-benchmark microbenchmarks of the core primitives: the dual
// subsequence gather vs the baseline sequential merge (simulated cost and
// host-side speed), the permutations, merge-path search, the odd-even
// network, and the worst-case input builders.
#include <benchmark/benchmark.h>

#include <numeric>
#include <random>
#include <vector>

#include "gather/dual_gather.hpp"
#include "gather/validator.hpp"
#include "gpusim/launcher.hpp"
#include "mergepath/merge_path.hpp"
#include "sort/merge_sort.hpp"
#include "sort/odd_even.hpp"
#include "worstcase/builder.hpp"

using namespace cfmerge;

namespace {

std::vector<std::int64_t> random_sizes(std::mt19937_64& rng, int u, int e) {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(u));
  for (auto& s : sizes) s = static_cast<std::int64_t>(rng() % (e + 1));
  return sizes;
}

gather::RoundSchedule make_schedule(int w, int e, int u, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto sizes = random_sizes(rng, u, e);
  std::vector<std::int64_t> off(sizes.size());
  std::int64_t run = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    off[i] = run;
    run += sizes[i];
  }
  gather::GatherShape shape{w, e, u,
                            run, static_cast<std::int64_t>(u) * e - run};
  return gather::RoundSchedule(shape, std::move(off), std::move(sizes));
}

void BM_RoundScheduleLookup(benchmark::State& state) {
  const auto sched = make_schedule(32, static_cast<int>(state.range(0)), 512, 1);
  const int e = static_cast<int>(state.range(0));
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i)
      for (int j = 0; j < e; ++j) sink += sched.read(i, j).phys;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 512 * e);
}
BENCHMARK(BM_RoundScheduleLookup)->Arg(15)->Arg(16)->Arg(17);

void BM_ScheduleValidation(benchmark::State& state) {
  std::mt19937_64 rng(2);
  const int e = static_cast<int>(state.range(0));
  const auto sizes = random_sizes(rng, 512, e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gather::validate_sizes(32, e, 512, sizes).ok);
  }
}
BENCHMARK(BM_ScheduleValidation)->Arg(15)->Arg(16);

void BM_SimulatedGather(benchmark::State& state) {
  const int e = static_cast<int>(state.range(0));
  const int u = 512;
  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  std::vector<int> regs(static_cast<std::size_t>(u) * static_cast<std::size_t>(e));
  for (auto _ : state) {
    launcher.clear_history();
    launcher.launch("gather", gpusim::LaunchShape{1, u, 0, 32},
                    [&](gpusim::BlockContext& ctx) {
                      gpusim::SharedTile<int> tile(
                          ctx, static_cast<std::size_t>(u) * static_cast<std::size_t>(e));
                      std::iota(tile.raw().begin(), tile.raw().end(), 0);
                      const auto sched = make_schedule(32, e, u, 3);
                      gather::dual_subsequence_gather(ctx, tile, sched,
                                                      std::span<int>(regs));
                    });
  }
  state.SetItemsProcessed(state.iterations() * u * e);
}
BENCHMARK(BM_SimulatedGather)->Arg(15)->Arg(17);

void BM_MergePathSearch(benchmark::State& state) {
  std::mt19937_64 rng(4);
  const std::int64_t n = state.range(0);
  std::vector<int> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
  for (auto& x : a) x = static_cast<int>(rng() % 100000);
  for (auto& x : b) x = static_cast<int>(rng() % 100000);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::int64_t diag = 0;
  for (auto _ : state) {
    diag = (diag + 7919) % (2 * n);
    benchmark::DoNotOptimize(
        mergepath::merge_path<int>(diag, std::span<const int>(a), std::span<const int>(b)));
  }
}
BENCHMARK(BM_MergePathSearch)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_OddEvenNetwork(benchmark::State& state) {
  std::mt19937_64 rng(5);
  const int e = static_cast<int>(state.range(0));
  std::vector<int> items(static_cast<std::size_t>(e));
  for (auto _ : state) {
    for (auto& x : items) x = static_cast<int>(rng());
    sort::odd_even_transposition_sort(std::span<int>(items));
    benchmark::DoNotOptimize(items.data());
  }
}
BENCHMARK(BM_OddEvenNetwork)->Arg(15)->Arg(17)->Arg(32);

void BM_WorstCaseBuilder(benchmark::State& state) {
  const worstcase::Params p{32, 15};
  const std::int64_t n = 512LL * 15 * state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(worstcase::worst_case_sort_input(p, 512, n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WorstCaseBuilder)->Arg(4)->Arg(16);

void BM_FullSortSimulation(benchmark::State& state) {
  // Host-side speed of the whole simulated sort (simulator throughput).
  const bool cf = state.range(0) != 0;
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(4));
  sort::MergeConfig cfg;
  cfg.e = 15;
  cfg.u = 512;
  cfg.variant = cf ? sort::Variant::CFMerge : sort::Variant::Baseline;
  std::mt19937_64 rng(6);
  const std::int64_t n = 512LL * 15 * 8;
  for (auto _ : state) {
    std::vector<int> data(static_cast<std::size_t>(n));
    for (auto& x : data) x = static_cast<int>(rng());
    benchmark::DoNotOptimize(sort::merge_sort(launcher, data, cfg).microseconds);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FullSortSimulation)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
