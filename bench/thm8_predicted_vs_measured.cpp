// Theorem 8 validation: predicted worst-case bank conflicts per warp vs the
// conflicts the simulator measures when one warp runs the baseline
// sequential merge on the constructed input.
//
// The theorem counts analytical per-bank collisions in the last E banks; the
// simulator counts hardware replays (max per-bank degree - 1, per access).
// The two agree closely at the paper's w = 32 and within tens of percent for
// small warps (where the two preload accesses weigh relatively more).
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/table.hpp"
#include "gpusim/launcher.hpp"
#include "sort/serial_merge.hpp"
#include "worstcase/builder.hpp"
#include "worstcase/predict.hpp"

using namespace cfmerge;
using namespace cfmerge::worstcase;

namespace {

std::uint64_t measure_warp_conflicts(const Params& p) {
  const std::int64_t wE = static_cast<std::int64_t>(p.w) * p.e;
  const MergeInput in = worst_case_merge_input(p, 2 * wE);
  const auto tuples = warp_tuples(p, false);
  const std::int64_t la = a_total(tuples);
  const std::int64_t lb = wE - la;

  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(p.w));
  std::uint64_t conflicts = 0;
  launcher.launch("warp_merge", gpusim::LaunchShape{1, p.w, 0, 32},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, static_cast<std::size_t>(wE));
                    for (std::int64_t x = 0; x < la; ++x)
                      tile.raw()[static_cast<std::size_t>(x)] =
                          in.a[static_cast<std::size_t>(x)];
                    for (std::int64_t y = 0; y < lb; ++y)
                      tile.raw()[static_cast<std::size_t>(la + y)] =
                          in.b[static_cast<std::size_t>(y)];
                    std::vector<sort::MergeLaneDesc> descs(static_cast<std::size_t>(p.w));
                    std::int64_t ao = 0, bo = 0;
                    for (int i = 0; i < p.w; ++i) {
                      const Tuple& t = tuples[static_cast<std::size_t>(i)];
                      descs[static_cast<std::size_t>(i)] = {ao, t.a, bo, t.b};
                      ao += t.a;
                      bo += t.b;
                    }
                    std::vector<int> regs(static_cast<std::size_t>(wE));
                    sort::warp_serial_merge(ctx, tile,
                                            std::span<const sort::MergeLaneDesc>(descs),
                                            p.e, [](std::int64_t x) { return x; },
                                            [la](std::int64_t y) { return la + y; },
                                            std::span<int>(regs));
                    conflicts = ctx.counters().total().bank_conflicts;
                  });
  return conflicts;
}

}  // namespace

int main() {
  std::printf("Theorem 8: predicted vs measured worst-case conflicts (one warp, one merge)\n");
  std::printf("predicted = E^2 for E <= w/2, else (E^2 + 2Er + Ed - r^2 - rd)/2\n\n");

  analysis::Table table("predicted vs measured");
  table.set_header({"w", "E", "d", "q", "r", "predicted", "measured", "measured/predicted",
                    "trivial bound E(w-1)"});
  for (const int w : {8, 12, 16, 32}) {
    for (int e = 2; e <= w; ++e) {
      const Params p{w, e};
      const std::int64_t predicted = predicted_warp_conflicts(p);
      const std::uint64_t measured = measure_warp_conflicts(p);
      table.add_row({std::to_string(w), std::to_string(e),
                     std::to_string(p.d()), std::to_string(p.q()), std::to_string(p.r()),
                     std::to_string(predicted), std::to_string(measured),
                     analysis::Table::num(predicted > 0 ? static_cast<double>(measured) /
                                                              static_cast<double>(predicted)
                                                        : 0.0,
                                          2),
                     std::to_string(trivial_warp_conflict_bound(p))});
    }
  }
  table.print(std::cout);

  std::printf("\npaper's measured software parameters:\n");
  for (const int e : {15, 17}) {
    const Params p{32, e};
    std::printf("  w=32 E=%d: predicted %lld, measured %llu\n", e,
                static_cast<long long>(predicted_warp_conflicts(p)),
                static_cast<unsigned long long>(measure_warp_conflicts(p)));
  }
  return 0;
}
