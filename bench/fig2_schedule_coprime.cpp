// Figure 2 reproduction: the CF-Merge gather schedule for w = 12, E = 5,
// d = 1 (coprime).  Prints the per-round access matrices (cells labeled by
// reading thread, '[..]' = read this round) and verifies that every round is
// bank conflict free.
#include <cstdio>

#include "schedule_render.hpp"

using namespace cfmerge;

int main() {
  std::printf("Figure 2: CF gather schedule, w=12 E=5 d=1 (coprime), one warp\n");
  std::printf("cells: <thread><list>, [..] = accessed in the shown round\n\n");
  auto viz = benchviz::ScheduleViz::random(12, 5, 12, /*seed=*/2025);
  for (int j = 0; j < 5; ++j) viz.print_round(j);
  viz.print_validation();

  std::printf("Thrust's measured software parameters are also coprime:\n");
  for (const auto& [e, u] : {std::pair{15, 512}, std::pair{17, 256}}) {
    auto big = benchviz::ScheduleViz::random(32, e, u, 7);
    gather::RoundSchedule sched(big.shape, big.a_off, big.a_size);
    const auto res = gather::validate_schedule(sched);
    std::printf("  w=32 E=%d u=%d: %s\n", e, u,
                res.ok ? "bank conflict free" : res.error.c_str());
  }
  return 0;
}
