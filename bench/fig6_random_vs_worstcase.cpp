// Figure 6 reproduction: throughput of the baseline (Thrust) and CF-Merge on
// both uniform random and constructed worst-case inputs, one panel per
// software parameter set.
//
// The paper's story: the baseline's worst-case curve sits well below its
// random curve (up to ~50% slowdown per prior work), while CF-Merge's two
// curves coincide with each other and with the baseline's random curve.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/plot.hpp"
#include "analysis/table.hpp"

using namespace cfmerge;

namespace {
int parse_sms(int argc, char** argv, int def) {
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--sms=", 6) == 0) return std::atoi(argv[i] + 6);
  return def;
}
}  // namespace

int main(int argc, char** argv) {
  const auto sweep = analysis::SweepConfig::from_args(argc, argv);
  const int sms = parse_sms(argc, argv, 4);
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(sms));
  launcher.set_threads(sweep.threads);
  const int w = launcher.device().warp_size;

  std::printf("Figure 6: random vs worst-case inputs (%s)\n\n",
              launcher.device().name.c_str());

  for (const auto& [e, u] : {std::pair{15, 512}, std::pair{17, 256}}) {
    std::printf("== parameter set E=%d, u=%d ==\n", e, u);
    analysis::Table table("Fig 6 data (E=" + std::to_string(e) + ", u=" +
                          std::to_string(u) + ")");
    table.set_header({"n", "thrust-rand", "thrust-worst", "cf-rand", "cf-worst",
                      "thrust worst/rand", "cf worst/rand"});
    analysis::AsciiPlot plot("Fig 6 throughput (E=" + std::to_string(e) + ")", "n",
                             "elements/us");
    plot.set_log_x(true);
    analysis::Series tr{"thrust random", 'r', {}, {}};
    analysis::Series tw{"thrust worst", 'w', {}, {}};
    analysis::Series cr{"cf random", 'c', {}, {}};
    analysis::Series cw{"cf worst", 'C', {}, {}};

    std::int64_t last_shaped = -1;
    for (const std::int64_t n : sweep.sizes(e)) {
      const std::int64_t tile = static_cast<std::int64_t>(u) * e;
      std::int64_t tiles = std::max<std::int64_t>(n / tile, 1);
      while (tiles & (tiles - 1)) ++tiles;
      const std::int64_t shaped = tiles * tile;
      if (shaped == last_shaped) continue;  // tiny sizes round to the same shape
      last_shaped = shaped;

      workloads::WorkloadSpec spec;
      spec.n = shaped;
      spec.w = w;
      spec.e = e;
      spec.u = u;
      spec.seed = sweep.seed;
      sort::MergeConfig cfg;
      cfg.e = e;
      cfg.u = u;

      auto point = [&](sort::Variant v, workloads::Distribution d) {
        spec.dist = d;
        cfg.variant = v;
        return analysis::run_sort_point(launcher, spec, cfg, sweep.reps);
      };
      const auto trp = point(sort::Variant::Baseline, workloads::Distribution::UniformRandom);
      const auto twp = point(sort::Variant::Baseline, workloads::Distribution::WorstCase);
      const auto crp = point(sort::Variant::CFMerge, workloads::Distribution::UniformRandom);
      const auto cwp = point(sort::Variant::CFMerge, workloads::Distribution::WorstCase);

      tr.x.push_back(static_cast<double>(shaped));
      tr.y.push_back(trp.throughput);
      tw.x.push_back(static_cast<double>(shaped));
      tw.y.push_back(twp.throughput);
      cr.x.push_back(static_cast<double>(shaped));
      cr.y.push_back(crp.throughput);
      cw.x.push_back(static_cast<double>(shaped));
      cw.y.push_back(cwp.throughput);
      table.add_row({std::to_string(shaped), analysis::Table::num(trp.throughput, 1),
                     analysis::Table::num(twp.throughput, 1),
                     analysis::Table::num(crp.throughput, 1),
                     analysis::Table::num(cwp.throughput, 1),
                     analysis::Table::num(twp.throughput / trp.throughput, 3),
                     analysis::Table::num(cwp.throughput / crp.throughput, 3)});
    }
    table.print(std::cout);
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--csv-prefix=", 13) == 0) {
        const std::string path = std::string(argv[i] + 13) + "_E" + std::to_string(e) + ".csv";
        std::ofstream f(path);
        table.write_csv(f);
        std::printf("wrote %s\n", path.c_str());
      }
    }
    plot.add_series(std::move(tr));
    plot.add_series(std::move(tw));
    plot.add_series(std::move(cr));
    plot.add_series(std::move(cw));
    plot.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
