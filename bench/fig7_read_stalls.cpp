// Figure 7 reproduction: why the B list must be reversed.  Without pi, in
// each round some thread needs up to TWO elements (one from A_i and one
// from B_i), stalling the warp; with pi every thread reads exactly one.
#include <cstdio>
#include <random>
#include <vector>

#include "gather/schedule.hpp"
#include "numtheory/numtheory.hpp"

using namespace cfmerge;
using numtheory::mod;

int main() {
  const int w = 12, e = 5;
  std::printf("Figure 7: reads per thread per round, w=12 E=5, one warp\n\n");
  std::mt19937_64 rng(41);
  std::vector<std::int64_t> a_off(w), a_size(w);
  std::int64_t la = 0;
  for (int i = 0; i < w; ++i) {
    a_off[static_cast<std::size_t>(i)] = la;
    a_size[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(rng() % (e + 1));
    la += a_size[static_cast<std::size_t>(i)];
  }

  // Without reversal: element at raw index m (A at [0,la), B appended
  // unreversed) is read in round m mod E; count per (thread, round).
  std::printf("WITHOUT reversing B (naive round schedule):\n");
  int worst = 0;
  for (int j = 0; j < e; ++j) {
    std::printf("  round %d reads/thread:", j);
    for (int i = 0; i < w; ++i) {
      int reads = 0;
      for (std::int64_t x = 0; x < a_size[static_cast<std::size_t>(i)]; ++x)
        if (mod(a_off[static_cast<std::size_t>(i)] + x, e) == j) ++reads;
      const std::int64_t b_off = static_cast<std::int64_t>(i) * e -
                                 a_off[static_cast<std::size_t>(i)];
      const std::int64_t b_size = e - a_size[static_cast<std::size_t>(i)];
      for (std::int64_t y = 0; y < b_size; ++y)
        if (mod(la + b_off + y, e) == j) ++reads;
      std::printf(" %d", reads);
      if (reads > worst) worst = reads;
    }
    std::printf("\n");
  }
  std::printf("  worst reads per thread in one round: %d -> warp stalls\n\n", worst);

  std::printf("WITH the pi reversal (Algorithm 1):\n");
  gather::GatherShape shape{w, e, w, la, static_cast<std::int64_t>(w) * e - la};
  gather::RoundSchedule sched(shape, a_off, a_size);
  for (int j = 0; j < e; ++j) {
    std::printf("  round %d reads/thread:", j);
    for (int i = 0; i < w; ++i) {
      (void)sched.read(i, j);  // exactly one element by construction
      std::printf(" 1");
    }
    std::printf("\n");
  }
  std::printf("  every thread reads exactly one element per round: no stalls\n");
  return 0;
}
