// Sorter shootout: the paper's framing is that merge-path mergesort is the
// fastest comparison sort on GPUs.  This harness compares, on the simulated
// device, the three comparison sorters in the repository:
//   * Thrust-style baseline mergesort,
//   * CF-Merge,
//   * bitonic sort (plain and padded),
// on random and worst-case inputs, reporting throughput and conflicts.
#include <cstdio>
#include <iostream>
#include <random>

#include "analysis/table.hpp"
#include "gpusim/launcher.hpp"
#include "sort/bitonic.hpp"
#include "sort/merge_sort.hpp"
#include "worstcase/builder.hpp"

using namespace cfmerge;

int main(int argc, char** argv) {
  int tiles = 32;
  int threads = 0;  // 0 = CFMERGE_SIM_THREADS env or sequential
  for (int i = 1; i < argc; ++i) {
    std::sscanf(argv[i], "--tiles=%d", &tiles);
    std::sscanf(argv[i], "--threads=%d", &threads);
  }
  while (tiles & (tiles - 1)) ++tiles;

  const int e = 16, u = 512;  // shared tile geometry comparable across sorters
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(4));
  launcher.set_threads(threads);
  const int w = launcher.device().warp_size;
  const std::int64_t n = static_cast<std::int64_t>(tiles) * u * e;

  std::printf("Sorter shootout on %s, n = %lld (E=%d, u=%d)\n\n",
              launcher.device().name.c_str(), static_cast<long long>(n), e, u);

  std::mt19937_64 rng(123);
  std::vector<int> random_input(static_cast<std::size_t>(n));
  for (auto& x : random_input) x = static_cast<int>(rng());
  const auto worst32 = worstcase::worst_case_sort_input(worstcase::Params{w, e}, u, n);
  const std::vector<int> worst_input(worst32.begin(), worst32.end());

  analysis::Table t("throughput and conflicts");
  t.set_header({"sorter", "input", "time (us)", "elements/us", "shared conflicts",
                "shared accesses"});

  auto add_merge = [&](sort::Variant v, const char* name, const std::vector<int>& input,
                       const char* dist) {
    sort::MergeConfig cfg;
    cfg.e = e;
    cfg.u = u;
    cfg.variant = v;
    std::vector<int> data = input;
    const auto r = sort::merge_sort(launcher, data, cfg);
    if (!std::is_sorted(data.begin(), data.end())) std::abort();
    t.add_row({name, dist, analysis::Table::num(r.microseconds, 1),
               analysis::Table::num(r.throughput(), 1),
               std::to_string(r.totals.bank_conflicts),
               std::to_string(r.totals.shared_accesses)});
  };
  auto add_bitonic = [&](bool padded, const std::vector<int>& input, const char* dist) {
    sort::BitonicConfig cfg;
    cfg.u = u;
    cfg.elems_per_thread = 16;  // tile matches the mergesort tile
    cfg.padded = padded;
    std::vector<int> data = input;
    const auto r = sort::bitonic_sort(launcher, data, cfg);
    if (!std::is_sorted(data.begin(), data.end())) std::abort();
    t.add_row({padded ? "bitonic (padded)" : "bitonic", dist,
               analysis::Table::num(r.microseconds, 1),
               analysis::Table::num(r.throughput(), 1),
               std::to_string(r.totals.bank_conflicts),
               std::to_string(r.totals.shared_accesses)});
  };

  const std::vector<std::pair<const std::vector<int>*, const char*>> inputs{
      {&random_input, "uniform-random"}, {&worst_input, "worst-case"}};
  for (const auto& [input, dist] : inputs) {
    add_merge(sort::Variant::Baseline, "thrust-baseline", *input, dist);
    add_merge(sort::Variant::CFMerge, "cf-merge", *input, dist);
    add_bitonic(false, *input, dist);
    add_bitonic(true, *input, dist);
  }
  t.print(std::cout);

  std::printf("\nNotes: the mergesort worst-case input is adversarial for the\n"
              "baseline's data-dependent merge only; bitonic's conflicts are\n"
              "structural and input-independent; CF-Merge is conflict free during\n"
              "merging on every input.\n");
  return 0;
}
