// Sorter shootout: the paper's framing is that merge-path mergesort is the
// fastest comparison sort on GPUs.  This harness compares, on the simulated
// device, the comparison sorters in the repository:
//   * Thrust-style baseline mergesort,
//   * CF-Merge (the 2-way conflict-free pipeline),
//   * k-way multiway CF-Merge (cascade variant, k = 4 and 8) and the
//     conflicted loser-tree baseline at k = 4,
//   * bitonic sort (plain and padded),
// on random and worst-case inputs, reporting throughput, global pass counts
// and conflicts.  The multiway head-to-head (passes, elem/us, speedup vs the
// 2-way pipeline) is also written to BENCH_multiway.json (see --out=).
//
//   sorter_shootout [--tiles=T] [--threads=T] [--out=FILE.json]
//
// Exit status is non-zero if any sorter produces unsorted output or a
// multiway sorter's output differs from the 2-way CF pipeline's.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>

#include "analysis/json.hpp"
#include "analysis/table.hpp"
#include "gpusim/launcher.hpp"
#include "sort/bitonic.hpp"
#include "sort/engine.hpp"
#include "sort/merge_sort.hpp"
#include "worstcase/builder.hpp"

using namespace cfmerge;

namespace {

/// One multiway head-to-head measurement destined for BENCH_multiway.json.
struct MultiwayRow {
  std::string variant;  // "cf-cascade" or "loser-tree"
  std::string input;    // distribution name
  int k = 0;
  std::int64_t passes = 0;
  std::int64_t passes_2way = 0;
  double microseconds = 0.0;
  double elem_per_us = 0.0;
  double elem_per_us_2way = 0.0;
  unsigned long long merge_conflicts = 0;
  bool output_matches_2way = false;

  [[nodiscard]] double speedup_vs_2way() const {
    return elem_per_us_2way > 0 ? elem_per_us / elem_per_us_2way : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  int tiles = 32;
  int threads = 0;  // 0 = CFMERGE_SIM_THREADS env or sequential
  std::string out_path = "BENCH_multiway.json";
  for (int i = 1; i < argc; ++i) {
    std::sscanf(argv[i], "--tiles=%d", &tiles);
    std::sscanf(argv[i], "--threads=%d", &threads);
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  while (tiles & (tiles - 1)) ++tiles;

  const int e = 16, u = 512;  // shared tile geometry comparable across sorters
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(4));
  launcher.set_threads(threads);
  const int w = launcher.device().warp_size;
  const std::int64_t n = static_cast<std::int64_t>(tiles) * u * e;

  std::printf("Sorter shootout on %s, n = %lld (E=%d, u=%d)\n\n",
              launcher.device().name.c_str(), static_cast<long long>(n), e, u);

  std::mt19937_64 rng(123);
  std::vector<int> random_input(static_cast<std::size_t>(n));
  for (auto& x : random_input) x = static_cast<int>(rng());
  const auto worst32 = worstcase::worst_case_sort_input(worstcase::Params{w, e}, u, n);
  const std::vector<int> worst_input(worst32.begin(), worst32.end());

  bool ok = true;
  analysis::Table t("throughput and conflicts");
  t.set_header({"sorter", "input", "passes", "time (us)", "elements/us",
                "shared conflicts", "shared accesses"});

  // The 2-way CF run doubles as the multiway reference: its sorted output and
  // throughput, per input distribution.
  std::vector<int> cf_output;
  sort::SortReport cf_report;

  auto add_merge = [&](sort::Variant v, const char* name, const std::vector<int>& input,
                       const char* dist) {
    sort::MergeConfig cfg;
    cfg.e = e;
    cfg.u = u;
    cfg.variant = v;
    std::vector<int> data = input;
    const auto r = sort::merge_sort(launcher, data, cfg);
    if (!std::is_sorted(data.begin(), data.end())) {
      std::fprintf(stderr, "sorter_shootout: %s output NOT SORTED\n", name);
      ok = false;
    }
    t.add_row({name, dist, std::to_string(r.passes),
               analysis::Table::num(r.microseconds, 1),
               analysis::Table::num(r.throughput(), 1),
               std::to_string(r.totals.bank_conflicts),
               std::to_string(r.totals.shared_accesses)});
    if (v == sort::Variant::CFMerge) {
      cf_output = std::move(data);
      cf_report = r;
    }
  };
  auto add_bitonic = [&](bool padded, const std::vector<int>& input, const char* dist) {
    sort::BitonicConfig cfg;
    cfg.u = u;
    cfg.elems_per_thread = 16;  // tile matches the mergesort tile
    cfg.padded = padded;
    std::vector<int> data = input;
    const auto r = sort::bitonic_sort(launcher, data, cfg);
    if (!std::is_sorted(data.begin(), data.end())) {
      std::fprintf(stderr, "sorter_shootout: bitonic output NOT SORTED\n");
      ok = false;
    }
    t.add_row({padded ? "bitonic (padded)" : "bitonic", dist, "-",
               analysis::Table::num(r.microseconds, 1),
               analysis::Table::num(r.throughput(), 1),
               std::to_string(r.totals.bank_conflicts),
               std::to_string(r.totals.shared_accesses)});
  };

  // The cascade double-buffers k/2 extra warp tiles on top of the block tile,
  // so the largest block that fits the 64 KiB SM at k = 8 is u = 256; every
  // multiway row uses it so the k sweep is self-consistent.
  const int u_multiway = 256;
  std::vector<MultiwayRow> multiway_rows;
  auto add_multiway = [&](sort::MultiwayVariant v, int k, const std::vector<int>& input,
                          const char* dist) {
    sort::MultiwayConfig cfg;
    cfg.e = e;
    cfg.u = u_multiway;
    cfg.k = k;
    cfg.variant = v;
    std::vector<int> data = input;
    const auto r = sort::merge_sort_multiway(launcher, data, cfg);
    const char* vname =
        v == sort::MultiwayVariant::CFCascade ? "cf-cascade" : "loser-tree";
    const std::string name = std::string(vname) + " k=" + std::to_string(k);
    if (!std::is_sorted(data.begin(), data.end())) {
      std::fprintf(stderr, "sorter_shootout: %s output NOT SORTED\n", name.c_str());
      ok = false;
    }
    MultiwayRow row;
    row.variant = vname;
    row.input = dist;
    row.k = k;
    row.passes = r.passes;
    row.passes_2way = cf_report.passes;
    row.microseconds = r.microseconds;
    row.elem_per_us = r.throughput();
    row.elem_per_us_2way = cf_report.throughput();
    row.merge_conflicts = r.merge_conflicts();
    row.output_matches_2way = data == cf_output;
    if (!row.output_matches_2way) {
      std::fprintf(stderr, "sorter_shootout: %s output differs from 2-way CF\n",
                   name.c_str());
      ok = false;
    }
    multiway_rows.push_back(row);
    t.add_row({name, dist, std::to_string(r.passes),
               analysis::Table::num(r.microseconds, 1),
               analysis::Table::num(r.throughput(), 1),
               std::to_string(r.totals.bank_conflicts),
               std::to_string(r.totals.shared_accesses)});
  };

  const std::vector<std::pair<const std::vector<int>*, const char*>> inputs{
      {&random_input, "uniform-random"}, {&worst_input, "worst-case"}};
  for (const auto& [input, dist] : inputs) {
    add_merge(sort::Variant::Baseline, "thrust-baseline", *input, dist);
    add_merge(sort::Variant::CFMerge, "cf-merge", *input, dist);
    add_multiway(sort::MultiwayVariant::CFCascade, 4, *input, dist);
    add_multiway(sort::MultiwayVariant::CFCascade, 8, *input, dist);
    add_multiway(sort::MultiwayVariant::LoserTree, 4, *input, dist);
    add_bitonic(false, *input, dist);
    add_bitonic(true, *input, dist);
  }
  t.print(std::cout);

  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "sorter_shootout: cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "{\n  \"schema\": \"cfmerge.multiway_shootout.v1\",\n";
  f << "  \"device\": \"" << analysis::json_escape(launcher.device().name) << "\",\n";
  f << "  \"n\": " << n << ",\n  \"e\": " << e << ",\n  \"u\": " << u
    << ",\n  \"u_multiway\": " << u_multiway << ",\n";
  f << "  \"ok\": " << (ok ? "true" : "false") << ",\n";
  f << "  \"rows\": [\n";
  for (std::size_t i = 0; i < multiway_rows.size(); ++i) {
    const MultiwayRow& r = multiway_rows[i];
    f << "    {\"variant\": \"" << r.variant << "\", \"k\": " << r.k
      << ", \"input\": \"" << r.input << "\", \"passes\": " << r.passes
      << ", \"passes_2way\": " << r.passes_2way
      << ", \"microseconds\": " << r.microseconds
      << ", \"elem_per_us\": " << r.elem_per_us
      << ", \"elem_per_us_2way\": " << r.elem_per_us_2way
      << ", \"speedup_vs_2way\": " << r.speedup_vs_2way()
      << ", \"merge_conflicts\": " << r.merge_conflicts
      << ", \"output_matches_2way\": " << (r.output_matches_2way ? "true" : "false")
      << "}" << (i + 1 < multiway_rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  std::printf("\nNotes: the mergesort worst-case input is adversarial for the\n"
              "baseline's data-dependent merge only; bitonic's conflicts are\n"
              "structural and input-independent; CF-Merge and the multiway\n"
              "cascade are conflict free during merging on every input, while\n"
              "the loser-tree's data-dependent k-way gathers conflict.  Fewer\n"
              "global passes (log_k vs log_2 rounds) is the multiway payoff.\n");
  return ok ? 0 : 1;
}
