// Launcher scaling microbench: wall-clock speedup of the parallel block
// executor on a multi-block mergesort.
//
//   launcher_scaling [--tiles=N] [--maxthreads=T]
//
// Runs the same CF-Merge sort with 1, 2, 4, ... worker threads (up to
// --maxthreads, default 8) and reports wall-clock time, speedup over the
// sequential executor, and a bit-identity check of the simulated results
// (totals, per-phase counters and simulated microseconds must match the
// sequential run exactly — the executor's determinism contract).
//
// Speedup is bounded by the host core count (reported below); on a 1-core
// host every configuration degenerates to ~1.0x.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <random>
#include <thread>
#include <vector>

#include "analysis/table.hpp"
#include "gpusim/launcher.hpp"
#include "sort/merge_sort.hpp"

using namespace cfmerge;

namespace {

double wall_ms(const std::vector<int>& input, int threads, sort::SortReport& report) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(4));
  launcher.set_threads(threads);
  std::vector<int> data = input;
  const auto t0 = std::chrono::steady_clock::now();
  report = sort::merge_sort(launcher, data, [] {
    sort::MergeConfig cfg;
    cfg.e = 15;
    cfg.u = 512;
    cfg.variant = sort::Variant::CFMerge;
    return cfg;
  }());
  const auto t1 = std::chrono::steady_clock::now();
  if (!std::is_sorted(data.begin(), data.end())) std::abort();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  int tiles = 64;
  int maxthreads = 8;
  for (int i = 1; i < argc; ++i) {
    std::sscanf(argv[i], "--tiles=%d", &tiles);
    std::sscanf(argv[i], "--maxthreads=%d", &maxthreads);
  }
  while (tiles & (tiles - 1)) ++tiles;

  const std::int64_t n = static_cast<std::int64_t>(tiles) * 512 * 15;
  std::mt19937_64 rng(7);
  std::vector<int> input(static_cast<std::size_t>(n));
  for (auto& x : input) x = static_cast<int>(rng());

  std::printf("Launcher scaling: CF-Merge sort, n = %lld (%d blocks per kernel),\n"
              "host has %u hardware threads\n\n",
              static_cast<long long>(n), tiles, std::thread::hardware_concurrency());

  sort::SortReport seq;
  const double seq_ms = wall_ms(input, 1, seq);

  analysis::Table t("wall-clock vs worker threads");
  t.set_header({"threads", "wall (ms)", "speedup", "sim time (us)", "bit-identical"});
  t.add_row({"1", analysis::Table::num(seq_ms, 1), "1.00",
             analysis::Table::num(seq.microseconds, 1), "ref"});
  for (int threads = 2; threads <= maxthreads; threads *= 2) {
    sort::SortReport par;
    const double ms = wall_ms(input, threads, par);
    const bool identical = par.totals == seq.totals && par.phases == seq.phases &&
                           par.microseconds == seq.microseconds;
    t.add_row({std::to_string(threads), analysis::Table::num(ms, 1),
               analysis::Table::num(seq_ms / ms, 2),
               analysis::Table::num(par.microseconds, 1), identical ? "yes" : "NO (BUG)"});
    if (!identical) {
      std::fprintf(stderr, "launcher_scaling: parallel report diverged at %d threads\n",
                   threads);
      return 1;
    }
  }
  t.print(std::cout);

  std::printf("\nSimulated results are independent of the worker count by\n"
              "construction (per-block accumulators reduced in block order);\n"
              "only host wall-clock changes.  See docs/architecture.md.\n");
  return 0;
}
