// Timing-model robustness check: how do the headline relative results
// (baseline worst/random slowdown, CF-Merge speedup, CF≈baseline on random)
// respond to the main calibration constants?
//
// Sweeps shared_replay_cycles (the cost of one bank-conflict replay) and the
// sustained-DRAM fraction.  The conflict *counters* never change — only the
// conversion to time — so this quantifies how much of EXPERIMENTS.md's story
// depends on calibration: the orderings should hold across the whole sweep,
// with only the magnitudes moving.
#include <cstdio>
#include <iostream>
#include <random>

#include "analysis/table.hpp"
#include "gpusim/launcher.hpp"
#include "sort/merge_sort.hpp"
#include "worstcase/builder.hpp"

using namespace cfmerge;

namespace {

struct Scenario {
  double base_rand_us = 0;
  double base_worst_us = 0;
  double cf_rand_us = 0;
  double cf_worst_us = 0;
};

Scenario run_device(const gpusim::DeviceSpec& dev, const std::vector<int>& random_input,
                    const std::vector<int>& worst_input, int e, int u) {
  gpusim::Launcher launcher(dev);
  Scenario s;
  for (const auto variant : {sort::Variant::Baseline, sort::Variant::CFMerge}) {
    for (const bool worst : {false, true}) {
      sort::MergeConfig cfg;
      cfg.e = e;
      cfg.u = u;
      cfg.variant = variant;
      std::vector<int> data = worst ? worst_input : random_input;
      const auto report = sort::merge_sort(launcher, data, cfg);
      if (!std::is_sorted(data.begin(), data.end())) std::abort();
      double& slot = variant == sort::Variant::Baseline
                         ? (worst ? s.base_worst_us : s.base_rand_us)
                         : (worst ? s.cf_worst_us : s.cf_rand_us);
      slot = report.microseconds;
    }
  }
  return s;
}

}  // namespace

int main() {
  const int e = 15, u = 512, tiles = 32;
  const gpusim::DeviceSpec base_dev = gpusim::DeviceSpec::scaled_turing(4);
  const std::int64_t n = static_cast<std::int64_t>(tiles) * u * e;

  std::mt19937_64 rng(77);
  std::vector<int> random_input(static_cast<std::size_t>(n));
  for (auto& x : random_input) x = static_cast<int>(rng());
  const auto w32 =
      worstcase::worst_case_sort_input(worstcase::Params{base_dev.warp_size, e}, u, n);
  const std::vector<int> worst_input(w32.begin(), w32.end());

  std::printf("Timing-model sensitivity (E=%d, u=%d, n=%lld, %s base)\n", e, u,
              static_cast<long long>(n), base_dev.name.c_str());
  std::printf("counters are model-independent; only the time conversion moves.\n\n");

  {
    analysis::Table t("sweep 1: shared_replay_cycles (bank-conflict replay cost)");
    t.set_header({"replay cycles", "thrust worst/rand", "cf speedup on worst",
                  "cf/thrust on random"});
    for (const int replay : {1, 2, 4, 8}) {
      gpusim::DeviceSpec dev = base_dev;
      dev.shared_replay_cycles = replay;
      const Scenario s = run_device(dev, random_input, worst_input, e, u);
      t.add_row({std::to_string(replay),
                 analysis::Table::num(s.base_worst_us / s.base_rand_us, 3),
                 analysis::Table::num(s.base_worst_us / s.cf_worst_us, 3),
                 analysis::Table::num(s.cf_rand_us / s.base_rand_us, 3)});
    }
    t.print(std::cout);
  }

  std::printf("\n");
  {
    analysis::Table t("sweep 2: sustained DRAM bandwidth (fraction of calibrated)");
    t.set_header({"dram fraction", "thrust worst/rand", "cf speedup on worst",
                  "cf/thrust on random"});
    for (const double frac : {0.5, 0.75, 1.0, 1.5, 2.0}) {
      gpusim::DeviceSpec dev = base_dev;
      dev.dram_bytes_per_cycle = base_dev.dram_bytes_per_cycle * frac;
      const Scenario s = run_device(dev, random_input, worst_input, e, u);
      t.add_row({analysis::Table::num(frac, 2),
                 analysis::Table::num(s.base_worst_us / s.base_rand_us, 3),
                 analysis::Table::num(s.base_worst_us / s.cf_worst_us, 3),
                 analysis::Table::num(s.cf_rand_us / s.base_rand_us, 3)});
    }
    t.print(std::cout);
  }

  std::printf(
      "\nReading the tables: the baseline always loses on the worst case and\n"
      "CF-Merge always stays within a few percent of the baseline on random\n"
      "inputs; the calibration constants only scale the margin.\n");
  return 0;
}
