// Figure 5 reproduction: throughput (elements per simulated microsecond) of
// Thrust-style baseline vs CF-Merge on the constructed worst-case inputs,
// for both software parameter sets (E=15, u=512) and (E=17, u=256),
// n = 2^i * E.
//
// The paper runs i = 16..26 on an RTX 2080 Ti; the cycle-level simulator
// cannot afford paper-scale n, so the default sweep is i = 8..14 on a
// scaled Turing device (4 SMs, identical per-SM architecture — small n then
// reaches the same throughput-bound regime as paper-scale n on 68 SMs).
// Extend with --imin/--imax/--reps/--sms or CFMERGE_BENCH_FULL=1;
// --threads=N simulates blocks on N host workers (results bit-identical).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "analysis/experiment.hpp"
#include "analysis/plot.hpp"
#include "analysis/table.hpp"

using namespace cfmerge;

namespace {

int parse_sms(int argc, char** argv, int def) {
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--sms=", 6) == 0) return std::atoi(argv[i] + 6);
  return def;
}

struct ParamSet {
  int e;
  int u;
};

}  // namespace

int main(int argc, char** argv) {
  const auto sweep = analysis::SweepConfig::from_args(argc, argv);
  const int sms = parse_sms(argc, argv, 4);
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(sms));
  launcher.set_threads(sweep.threads);
  const int w = launcher.device().warp_size;

  std::printf("Figure 5: throughput on constructed worst-case inputs (%s)\n",
              launcher.device().name.c_str());
  std::printf("paper: CF-Merge speedups avg/mean/max 1.37/1.45/1.47 (E=15,u=512) "
              "and 1.17/1.23/1.25 (E=17,u=256)\n\n");

  analysis::AsciiPlot plot("Fig 5: worst-case throughput", "n", "elements/us");
  plot.set_log_x(true);
  analysis::Table table("Fig 5 data");
  table.set_header({"E", "u", "n", "thrust e/us", "cfmerge e/us", "speedup",
                    "thrust merge-conf/acc", "cf merge-conf"});

  for (const ParamSet ps : {ParamSet{15, 512}, ParamSet{17, 256}}) {
    analysis::Series thrust_s{"Thrust E=" + std::to_string(ps.e), ps.e == 15 ? 't' : 'T',
                              {}, {}};
    analysis::Series cf_s{"CF-Merge E=" + std::to_string(ps.e), ps.e == 15 ? 'c' : 'C',
                          {}, {}};
    double sum_speedup = 0.0, max_speedup = 0.0;
    int points = 0;
    std::int64_t last_shaped = -1;
    for (const std::int64_t n : sweep.sizes(ps.e)) {
      // The worst-case builder needs a power-of-two number of full tiles
      // (u is a multiple of 2w for both parameter sets, so each tile holds
      // whole warp-pair pattern periods).  Round n to the nearest shape.
      const std::int64_t tile = static_cast<std::int64_t>(ps.u) * ps.e;
      std::int64_t tiles = std::max<std::int64_t>(n / tile, 1);
      while (tiles & (tiles - 1)) ++tiles;
      const std::int64_t shaped = tiles * tile;
      if (shaped == last_shaped) continue;  // tiny sizes round to the same shape
      last_shaped = shaped;

      workloads::WorkloadSpec spec;
      spec.dist = workloads::Distribution::WorstCase;
      spec.n = shaped;
      spec.w = w;
      spec.e = ps.e;
      spec.u = ps.u;
      spec.seed = sweep.seed;

      sort::MergeConfig cfg;
      cfg.e = ps.e;
      cfg.u = ps.u;
      cfg.variant = sort::Variant::Baseline;
      const auto base = analysis::run_sort_point(launcher, spec, cfg, sweep.reps);
      cfg.variant = sort::Variant::CFMerge;
      const auto cf = analysis::run_sort_point(launcher, spec, cfg, sweep.reps);

      const double speedup = base.microseconds / cf.microseconds;
      sum_speedup += speedup;
      max_speedup = std::max(max_speedup, speedup);
      ++points;
      thrust_s.x.push_back(static_cast<double>(shaped));
      thrust_s.y.push_back(base.throughput);
      cf_s.x.push_back(static_cast<double>(shaped));
      cf_s.y.push_back(cf.throughput);
      table.add_row({std::to_string(ps.e), std::to_string(ps.u), std::to_string(shaped),
                     analysis::Table::num(base.throughput, 1),
                     analysis::Table::num(cf.throughput, 1),
                     analysis::Table::num(speedup, 3),
                     analysis::Table::num(base.merge_conflicts_per_access, 2),
                     std::to_string(cf.merge_conflicts)});
    }
    std::printf("E=%d u=%d: CF-Merge speedup on worst case: avg %.2f, max %.2f\n", ps.e,
                ps.u, sum_speedup / points, max_speedup);
    plot.add_series(std::move(thrust_s));
    plot.add_series(std::move(cf_s));
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("\n");
  plot.print(std::cout);

  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      std::ofstream f(argv[i] + 6);
      table.write_csv(f);
      std::printf("wrote %s\n", argv[i] + 6);
    }
  }
  return 0;
}
