// Figure 1 reproduction: strided accesses in shared memory with w = 12.
//
// The left half of the paper's figure shows a stride-5 (coprime) warp access
// touching 12 distinct banks; the right half shows stride 6 serializing.
// This harness prints the bank matrix with the touched cells marked, plus a
// stride table for several bank counts (the gcd(w, stride) law).
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/table.hpp"
#include "gpusim/shared_memory.hpp"
#include "numtheory/numtheory.hpp"

using namespace cfmerge;

namespace {

void print_bank_matrix(int w, int cols, std::int64_t stride) {
  std::printf("w = %d, stride = %lld (gcd = %lld): ", w,
              static_cast<long long>(stride),
              static_cast<long long>(numtheory::gcd(w, stride)));
  std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
  for (int l = 0; l < w; ++l) addrs[static_cast<std::size_t>(l)] = l * stride;
  const auto cost = gpusim::shared_access_cost(addrs, w);
  std::printf("cost = %d cycle(s), conflicts = %d\n", cost.cycles, cost.conflicts);

  std::vector<char> touched(static_cast<std::size_t>(w * cols), 0);
  for (const auto a : addrs)
    if (a < static_cast<std::int64_t>(w) * cols) touched[static_cast<std::size_t>(a)] = 1;
  for (int bank = 0; bank < w; ++bank) {
    std::printf("%3d: ", bank);
    for (int c = 0; c < cols; ++c) {
      const int addr = c * w + bank;
      std::printf(touched[static_cast<std::size_t>(addr)] ? "[%3d]" : " %3d ", addr);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 1: strided shared memory accesses, w = 12\n");
  std::printf("(marked cells are accessed by the warp's 12 threads concurrently)\n\n");
  print_bank_matrix(12, 5, 5);  // coprime: conflict free (left of Figure 1)
  print_bank_matrix(12, 6, 6);  // gcd 6: 6-way serialization (right of Figure 1)

  analysis::Table table("serialization degree = gcd(w, stride) for every stride");
  table.set_header({"w", "stride", "gcd", "access cycles", "conflicts"});
  for (const int w : {12, 32}) {
    for (std::int64_t s = 1; s <= w; ++s) {
      std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
      for (int l = 0; l < w; ++l) addrs[static_cast<std::size_t>(l)] = l * s;
      const auto cost = gpusim::shared_access_cost(addrs, w);
      table.add_row({std::to_string(w), std::to_string(s),
                     std::to_string(numtheory::gcd(w, s)), std::to_string(cost.cycles),
                     std::to_string(cost.conflicts)});
    }
  }
  table.print(std::cout);
  return 0;
}
