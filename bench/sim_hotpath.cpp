// Simulator hot-path macro-benchmark: the canonical throughput trajectory.
//
//   sim_hotpath [--quick] [--repeats=R] [--threads=T] [--out=FILE.json]
//
// Runs a fixed shape matrix over the sort entry points — merge_sort (cf
// and baseline), the k-way multiway cascade, batched_merge,
// segmented_sort — plus a traced merge_sort, measures host wall-clock per
// case, and reports
// *simulated elements per host second* (how fast the simulator chews
// through work; the number every accounting-hot-path change must move).
// Each case is repeated --repeats times (fresh input copy each run) and
// min/median wall times are reported so the metric is low-variance.
//
// Every case runs through one shared SortEngine, so repeat 0 is the
// *cold* row (plan build + execute) and later repeats are *warm* rows
// (cached-plan replay); both land in the JSON along with the engine's
// aggregate plan-cache hit rate.
//
// Bit-identity checks are built in and gate the exit code:
//   * every repeat of a case must produce a bit-identical report
//     (counters, phases, per-kernel timings) — since repeat 0 builds the
//     plan and later repeats replay it, this also proves replay identity,
//   * tracing on vs. off must not change any counter,
//   * segmented serial vs. overlap execution must agree,
//   * a fully-audited run (shadow checker replaying every lane) and an
//     audit=certified-skip run (Pass 3 safety certificates eliding the
//     replay for proved access families) must agree bit for bit, with a
//     non-zero audit_skipped_accesses count on the skip side.
// CI runs `sim_hotpath --quick` and asserts only these checks (wall
// clock is never thresholded in CI); the committed BENCH_sim_hotpath.json
// is the perf trajectory seed for full Release runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "analysis/json.hpp"
#include "cfprims/permute.hpp"
#include "sort/batched_merge.hpp"
#include "sort/engine.hpp"
#include "sort/merge_sort.hpp"
#include "sort/segmented_sort.hpp"
#include "verify/certificate.hpp"
#include "verify/shadow.hpp"

using namespace cfmerge;

namespace {

struct CaseResult {
  std::string name;
  std::string detail;
  std::int64_t elements = 0;
  double sim_microseconds = 0.0;
  double wall_ms_min = 0.0;
  double wall_ms_median = 0.0;
  double wall_ms_cold = 0.0;  ///< repeat 0: plan build + execute on a fresh engine
  double wall_ms_warm = 0.0;  ///< min over repeats 1..: cached-plan replay
  double warm_speedup = 0.0;  ///< wall_ms_cold / wall_ms_warm
  double elem_per_sec = 0.0;  ///< simulated elements / host second (min wall)
  bool identity_ok = true;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::int32_t> random_vec(std::int64_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::int32_t>(rng());
  return v;
}

bool kernels_identical(const std::vector<gpusim::KernelReport>& a,
                       const std::vector<gpusim::KernelReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].name != b[k].name || a[k].counters != b[k].counters ||
        a[k].timing.microseconds != b[k].timing.microseconds)
      return false;
  }
  return true;
}

bool identical(const sort::SortReport& a, const sort::SortReport& b) {
  return a.totals == b.totals && a.phases == b.phases &&
         a.microseconds == b.microseconds &&
         a.makespan_microseconds == b.makespan_microseconds &&
         kernels_identical(a.kernels, b.kernels);
}

bool identical(const sort::BatchedMergeReport& a, const sort::BatchedMergeReport& b) {
  return a.totals == b.totals && a.phases == b.phases &&
         a.microseconds == b.microseconds &&
         a.makespan_microseconds == b.makespan_microseconds &&
         kernels_identical(a.kernels, b.kernels);
}

bool identical(const sort::SegmentedSortReport& a, const sort::SegmentedSortReport& b) {
  return a.totals == b.totals && a.phases == b.phases &&
         a.serial_microseconds == b.serial_microseconds &&
         a.makespan_microseconds == b.makespan_microseconds &&
         kernels_identical(a.kernels, b.kernels);
}

bool identical(const cfprims::PermuteReport& a, const cfprims::PermuteReport& b) {
  return a.totals == b.totals && a.phases == b.phases &&
         a.microseconds == b.microseconds &&
         a.makespan_microseconds == b.makespan_microseconds &&
         kernels_identical(a.kernels, b.kernels);
}

struct WallStats {
  double min_ms = 0.0;
  double median_ms = 0.0;
};

WallStats wall_stats(std::vector<double> times) {
  std::sort(times.begin(), times.end());
  WallStats s;
  s.min_ms = times.front();
  s.median_ms = times[times.size() / 2];
  return s;
}

/// Runs `body` (which returns a report) `repeats` times, fills wall stats,
/// and checks the repeat reports are bit-identical to the first.
template <typename Body>
CaseResult run_case(const std::string& name, const std::string& detail, int repeats,
                    std::int64_t elements, Body&& body) {
  CaseResult r;
  r.name = name;
  r.detail = detail;
  r.elements = elements;
  auto first = body(&r);  // repeat 0 (also records wall via r-side channel)
  std::vector<double> walls{r.wall_ms_min};
  for (int i = 1; i < repeats; ++i) {
    CaseResult tmp = r;
    auto rep = body(&tmp);
    walls.push_back(tmp.wall_ms_min);
    if (!identical(first, rep)) r.identity_ok = false;
  }
  const WallStats s = wall_stats(walls);
  r.wall_ms_min = s.min_ms;
  r.wall_ms_median = s.median_ms;
  r.wall_ms_cold = walls.front();
  r.wall_ms_warm = *std::min_element(walls.begin() + 1, walls.end());
  r.warm_speedup = r.wall_ms_warm > 0 ? r.wall_ms_cold / r.wall_ms_warm : 0.0;
  r.elem_per_sec =
      s.min_ms > 0 ? static_cast<double>(elements) / (s.min_ms / 1000.0) : 0.0;
  std::printf(
      "  %-28s cold %8.1f ms  warm %8.1f ms (x%4.2f)  %12.0f elem/s  identity %s\n",
      name.c_str(), r.wall_ms_cold, r.wall_ms_warm, r.warm_speedup, r.elem_per_sec,
      r.identity_ok ? "ok" : "FAIL");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int repeats = 0;  // 0 = default per mode
  int threads = 1;
  std::string out_path = "BENCH_sim_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") quick = true;
    else if (a.rfind("--repeats=", 0) == 0) repeats = std::stoi(a.substr(10));
    else if (a.rfind("--threads=", 0) == 0) threads = std::stoi(a.substr(10));
    else if (a.rfind("--out=", 0) == 0) out_path = a.substr(6);
    else {
      std::fprintf(stderr,
                   "usage: sim_hotpath [--quick] [--repeats=R] [--threads=T] "
                   "[--out=FILE.json]\n");
      return 2;
    }
  }
  if (repeats == 0) repeats = quick ? 2 : 3;
  if (repeats < 2) repeats = 2;  // identity checks need two runs

  const std::int64_t n_sort = quick ? (1 << 17) : (1 << 20);
  const int pairs = quick ? 8 : 32;
  const std::int64_t pair_len = quick ? 4096 : 16384;
  const int segments = quick ? 8 : 16;
  const std::int64_t n_segmented = quick ? (1 << 16) : (1 << 19);

  sort::MergeConfig cf_cfg;
  cf_cfg.e = 15;
  cf_cfg.u = 512;
  cf_cfg.variant = sort::Variant::CFMerge;
  sort::MergeConfig base_cfg = cf_cfg;
  base_cfg.variant = sort::Variant::Baseline;

  const auto dev = [] { return gpusim::DeviceSpec::scaled_turing(4); };

#ifdef CFMERGE_UNOPTIMIZED_BENCH
  std::fprintf(stderr,
               "sim_hotpath: WARNING — built without optimization "
               "(CMAKE_BUILD_TYPE is not Release); wall times are not "
               "comparable to BENCH_sim_hotpath.json\n");
#endif
  std::printf("sim_hotpath: %s mode, repeats=%d, threads=%d\n\n",
              quick ? "quick" : "full", repeats, threads);

  std::vector<CaseResult> results;

  // Plan-cache counters summed over every case's engine (each case gets its
  // own launcher + engine so cold rows really are cold).
  sort::EngineStats tally;
  auto accumulate = [&tally](const sort::EngineStats& es) {
    tally.plan_hits += es.plan_hits;
    tally.plan_misses += es.plan_misses;
    tally.plan_evictions += es.plan_evictions;
    tally.plans_cached += es.plans_cached;
    tally.plan_bytes += es.plan_bytes;
    tally.arena_bytes += es.arena_bytes;
    tally.arena_allocs += es.arena_allocs;
    tally.arena_reuses += es.arena_reuses;
    tally.bulk_charges += es.bulk_charges;
    tally.lane_charges += es.lane_charges;
    tally.audit_skipped_accesses += es.audit_skipped_accesses;
    // cert_* deliberately not summed: the certificate memo is process-wide,
    // so each engine snapshot reports the same cumulative numbers (taken
    // once from verify::certificate_stats() before the JSON is written).
  };

  // --- merge_sort, CF variant, random 2^20 (the trajectory's anchor case).
  const auto sort_input = random_vec(n_sort, 42);
  {
    gpusim::Launcher launcher(dev());
    launcher.set_threads(threads);
    sort::SortEngine engine(launcher);
    results.push_back(run_case(
        "merge_sort/cf/random", "n=" + std::to_string(n_sort), repeats, n_sort,
        [&](CaseResult* r) {
          auto data = sort_input;
          const double t0 = now_ms();
          auto rep = engine.sort(data, cf_cfg);
          r->wall_ms_min = now_ms() - t0;
          r->sim_microseconds = rep.microseconds;
          if (!std::is_sorted(data.begin(), data.end())) r->identity_ok = false;
          return rep;
        }));
    accumulate(engine.stats());
  }

  // --- merge_sort, baseline variant (exercises the conflicted shared path).
  {
    gpusim::Launcher launcher(dev());
    launcher.set_threads(threads);
    sort::SortEngine engine(launcher);
    results.push_back(run_case(
        "merge_sort/baseline/random", "n=" + std::to_string(n_sort), repeats, n_sort,
        [&](CaseResult* r) {
          auto data = sort_input;
          const double t0 = now_ms();
          auto rep = engine.sort(data, base_cfg);
          r->wall_ms_min = now_ms() - t0;
          r->sim_microseconds = rep.microseconds;
          if (!std::is_sorted(data.begin(), data.end())) r->identity_ok = false;
          return rep;
        }));
    accumulate(engine.stats());
  }

  // --- merge_sort, k-way multiway cascade: fewer global passes than the
  // 2-way pipeline at the same tile geometry, same plan-cache machinery.
  {
    sort::MultiwayConfig mw_cfg;
    mw_cfg.e = 15;
    mw_cfg.u = 256;  // cascade double-buffering needs 2(tile + (k/2)wE) words
    mw_cfg.k = 4;
    mw_cfg.variant = sort::MultiwayVariant::CFCascade;
    gpusim::Launcher launcher(dev());
    launcher.set_threads(threads);
    sort::SortEngine engine(launcher);
    results.push_back(run_case(
        "merge_sort/multiway-k4/random", "n=" + std::to_string(n_sort), repeats,
        n_sort, [&](CaseResult* r) {
          auto data = sort_input;
          const double t0 = now_ms();
          auto rep = engine.sort_multiway(data, mw_cfg);
          r->wall_ms_min = now_ms() - t0;
          r->sim_microseconds = rep.microseconds;
          if (!std::is_sorted(data.begin(), data.end())) r->identity_ok = false;
          return rep;
        }));
    accumulate(engine.stats());
  }

  // --- merge_sort with tracing attached: measures recording overhead, and
  // the counters must match the untraced run bit for bit.
  {
    const auto& untraced = results.front();
    gpusim::Launcher launcher(dev());
    launcher.set_threads(threads);
    sort::SortEngine engine(launcher);
    auto traced = run_case(
        "merge_sort/cf/random+trace", "n=" + std::to_string(n_sort), repeats, n_sort,
        [&](CaseResult* r) {
          gpusim::TraceSink sink;
          launcher.set_trace(&sink);
          auto data = sort_input;
          const double t0 = now_ms();
          auto rep = engine.sort(data, cf_cfg);
          r->wall_ms_min = now_ms() - t0;
          r->sim_microseconds = rep.microseconds;
          if (sink.size() == 0) r->identity_ok = false;
          launcher.set_trace(nullptr);
          return rep;
        });
    // Cross-check: tracing must not change the simulated outcome.
    if (traced.sim_microseconds != untraced.sim_microseconds) traced.identity_ok = false;
    results.push_back(traced);
    accumulate(engine.stats());
  }

  // --- batched_merge: many independent pairs, one graph.
  {
    std::vector<std::vector<std::int32_t>> as, bs;
    std::int64_t elements = 0;
    for (int p = 0; p < pairs; ++p) {
      auto a = random_vec(pair_len, 100 + static_cast<std::uint64_t>(p));
      auto b = random_vec(pair_len, 200 + static_cast<std::uint64_t>(p));
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      elements += 2 * pair_len;
      as.push_back(std::move(a));
      bs.push_back(std::move(b));
    }
    gpusim::Launcher launcher(dev());
    launcher.set_threads(threads);
    sort::SortEngine engine(launcher);
    results.push_back(run_case(
        "batched_merge/cf", std::to_string(pairs) + " pairs x " + std::to_string(pair_len),
        repeats, elements, [&](CaseResult* r) {
          std::vector<std::vector<std::int32_t>> outs;
          const double t0 = now_ms();
          auto rep = engine.batched_merge(as, bs, outs, cf_cfg);
          r->wall_ms_min = now_ms() - t0;
          r->sim_microseconds = rep.microseconds;
          for (const auto& o : outs)
            if (!std::is_sorted(o.begin(), o.end())) r->identity_ok = false;
          return rep;
        }));
    accumulate(engine.stats());
  }

  // --- segmented_sort: request batch as one graph; serial and overlap host
  // execution must agree bit for bit.
  {
    std::mt19937_64 rng(7);
    std::vector<std::vector<std::int32_t>> proto(static_cast<std::size_t>(segments));
    std::int64_t used = 0;
    for (int s = 0; s < segments; ++s) {
      const std::int64_t len = s + 1 == segments
                                   ? n_segmented - used
                                   : std::min<std::int64_t>(n_segmented - used,
                                                            1 + static_cast<std::int64_t>(
                                                                    rng() %
                                                                    (2 * n_segmented /
                                                                     segments)));
      proto[static_cast<std::size_t>(s)] =
          random_vec(len, 300 + static_cast<std::uint64_t>(s));
      used += len;
    }
    sort::SegmentedSortReport serial_rep;
    gpusim::Launcher seg_launcher(dev());
    seg_launcher.set_threads(threads);
    sort::SortEngine seg_engine(seg_launcher);
    auto seg = run_case(
        "segmented_sort/cf", std::to_string(segments) + " segments, n=" +
                                 std::to_string(n_segmented),
        repeats, n_segmented, [&](CaseResult* r) {
          auto batch = proto;
          const double t0 = now_ms();
          auto rep = seg_engine.segmented_sort(batch, cf_cfg,
                                               gpusim::GraphExec::Overlap);
          r->wall_ms_min = now_ms() - t0;
          r->sim_microseconds = rep.serial_microseconds;
          for (const auto& s2 : batch)
            if (!std::is_sorted(s2.begin(), s2.end())) r->identity_ok = false;
          return rep;
        });
    accumulate(seg_engine.stats());
    {
      gpusim::Launcher launcher(dev());
      launcher.set_threads(threads);
      auto batch = proto;
      serial_rep =
          sort::segmented_sort(launcher, batch, cf_cfg, gpusim::GraphExec::Serial);
      gpusim::Launcher launcher2(dev());
      launcher2.set_threads(threads);
      auto batch2 = proto;
      const auto overlap_rep =
          sort::segmented_sort(launcher2, batch2, cf_cfg, gpusim::GraphExec::Overlap);
      if (!identical(serial_rep, overlap_rep)) seg.identity_ok = false;
    }
    results.push_back(seg);
  }

  // --- cf-permute / cf-transpose: the standalone CF primitives through the
  // engine's plan cache, forward then inverse each repeat; the round trip
  // must be the identity and the kernels must stay conflict-free.
  for (const bool transpose : {false, true}) {
    cfprims::PermuteConfig pcfg;
    pcfg.op = transpose ? cfprims::PermuteOp::kTranspose : cfprims::PermuteOp::kPermute;
    pcfg.e = 15;
    pcfg.u = 512;
    gpusim::Launcher launcher(dev());
    launcher.set_threads(threads);
    sort::SortEngine engine(launcher);
    results.push_back(run_case(
        transpose ? "cf-transpose/roundtrip" : "cf-permute/roundtrip",
        "n=" + std::to_string(n_sort), repeats, n_sort, [&](CaseResult* r) {
          auto data = sort_input;
          const double t0 = now_ms();
          cfprims::PermuteConfig fwd = pcfg;
          fwd.inverse = false;
          auto rep = engine.permute(data, fwd);
          cfprims::PermuteConfig inv = pcfg;
          inv.inverse = true;
          engine.permute(data, inv);
          r->wall_ms_min = now_ms() - t0;
          r->sim_microseconds = rep.microseconds;
          data.resize(sort_input.size());
          if (data != sort_input) r->identity_ok = false;
          if (rep.totals.bank_conflicts != 0) r->identity_ok = false;
          return rep;
        }));
    accumulate(engine.stats());
  }

  // --- audited merge_sort: full per-lane shadow replay vs certified-skip.
  // The certificate-backed skip must not change a single counter, and must
  // actually elide work (audit_skipped_accesses > 0).
  {
    const std::int64_t n_audit = quick ? (1 << 15) : (1 << 17);
    const auto audit_input = random_vec(n_audit, 77);
    sort::SortReport full_rep, skip_rep;
    std::uint64_t skipped = 0;
    bool audit_ok = true;
    double full_ms = 0.0, skip_ms = 0.0;
    {
      verify::ShadowChecker shadow;
      gpusim::Launcher launcher(dev());
      launcher.set_threads(threads);
      launcher.set_audit(&shadow);
      sort::SortEngine engine(launcher);
      auto data = audit_input;
      const double t0 = now_ms();
      full_rep = engine.sort(data, cf_cfg);
      full_ms = now_ms() - t0;
      if (!std::is_sorted(data.begin(), data.end())) audit_ok = false;
      if (!shadow.summary().clean()) audit_ok = false;
      const sort::EngineStats es = engine.stats();
      if (es.audit_skipped_accesses != 0) audit_ok = false;  // skip mode is off
      accumulate(es);
    }
    {
      verify::ShadowChecker shadow;
      gpusim::Launcher launcher(dev());
      launcher.set_threads(threads);
      launcher.set_audit(&shadow);
      launcher.set_audit_skip(true);
      sort::SortEngine engine(launcher);
      auto data = audit_input;
      const double t0 = now_ms();
      skip_rep = engine.sort(data, cf_cfg);
      skip_ms = now_ms() - t0;
      if (!std::is_sorted(data.begin(), data.end())) audit_ok = false;
      const verify::ShadowSummary sum = shadow.summary();
      if (!sum.clean()) audit_ok = false;
      const sort::EngineStats es = engine.stats();
      skipped = es.audit_skipped_accesses;
      if (skipped == 0 || sum.skipped_accesses == 0) audit_ok = false;
      accumulate(es);
    }
    if (!identical(full_rep, skip_rep)) audit_ok = false;
    CaseResult r;
    r.name = "merge_sort/cf/audit-skip";
    r.detail = "n=" + std::to_string(n_audit) +
               ", audit_skipped_accesses=" + std::to_string(skipped);
    r.elements = n_audit;
    r.sim_microseconds = skip_rep.microseconds;
    r.wall_ms_min = std::min(full_ms, skip_ms);
    r.wall_ms_median = r.wall_ms_min;
    r.wall_ms_cold = full_ms;
    r.wall_ms_warm = skip_ms;
    r.warm_speedup = skip_ms > 0 ? full_ms / skip_ms : 0.0;
    r.elem_per_sec = skip_ms > 0
                         ? static_cast<double>(n_audit) / (skip_ms / 1000.0)
                         : 0.0;
    r.identity_ok = audit_ok;
    std::printf(
        "  %-28s full %8.1f ms  skip %8.1f ms (x%4.2f)  %12llu skipped  identity %s\n",
        r.name.c_str(), full_ms, skip_ms, r.warm_speedup,
        static_cast<unsigned long long>(skipped), audit_ok ? "ok" : "FAIL");
    results.push_back(r);
  }

  const bool all_ok =
      std::all_of(results.begin(), results.end(),
                  [](const CaseResult& r) { return r.identity_ok; });

  const verify::CertificateStats cert_stats = verify::certificate_stats();
  tally.cert_hits = cert_stats.hits;
  tally.cert_misses = cert_stats.misses;
  tally.certs_cached = cert_stats.cached;

  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "sim_hotpath: cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "{\n  \"schema\": \"cfmerge.sim_hotpath.v2\",\n";
  f << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  f << "  \"repeats\": " << repeats << ",\n";
  f << "  \"threads\": " << threads << ",\n";
  f << "  \"identity_ok\": " << (all_ok ? "true" : "false") << ",\n";
  f << "  \"engine\": ";
  analysis::write_json(f, tally);
  f << ",\n";
  f << "  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    f << "    {\"name\": \"" << analysis::json_escape(r.name) << "\", "
      << "\"detail\": \"" << analysis::json_escape(r.detail) << "\", "
      << "\"elements\": " << r.elements << ", "
      << "\"sim_microseconds\": " << r.sim_microseconds << ", "
      << "\"wall_ms_min\": " << r.wall_ms_min << ", "
      << "\"wall_ms_median\": " << r.wall_ms_median << ", "
      << "\"wall_ms_cold\": " << r.wall_ms_cold << ", "
      << "\"wall_ms_warm\": " << r.wall_ms_warm << ", "
      << "\"warm_speedup\": " << r.warm_speedup << ", "
      << "\"elem_per_sec\": " << r.elem_per_sec << ", "
      << "\"identity_ok\": " << (r.identity_ok ? "true" : "false") << "}"
      << (i + 1 < results.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  std::printf("\nplan cache: hits=%llu misses=%llu hit_rate=%.3f\n",
              static_cast<unsigned long long>(tally.plan_hits),
              static_cast<unsigned long long>(tally.plan_misses), tally.hit_rate());
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_ok) {
    std::fprintf(stderr, "sim_hotpath: BIT-IDENTITY CHECK FAILED\n");
    return 1;
  }
  return 0;
}
