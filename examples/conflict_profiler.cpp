// Conflict profiler: the library's stand-in for `nvprof`'s shared-memory
// counters.  Profiles any access pattern you can express as warp-wide
// address sets — here: the building blocks of the mergesort pipeline plus a
// few classic patterns (matrix transpose columns, histogram-style strides).
//
//   $ ./conflict_profiler
#include <cstdio>
#include <iostream>
#include <numeric>
#include <vector>

#include "cfmerge.hpp"

using namespace cfmerge;

namespace {

void profile(const char* name, int w, const std::vector<std::int64_t>& addrs) {
  const auto cost = gpusim::shared_access_cost(addrs, w);
  std::vector<int> scratch(static_cast<std::size_t>(w));
  const auto degrees = gpusim::shared_access_degrees(addrs, w, scratch);
  int hot = 0;
  for (const int d : degrees) hot = std::max(hot, d);
  std::printf("%-34s cycles=%2d conflicts=%2d hottest-bank-degree=%d\n", name,
              cost.cycles, cost.conflicts, hot);
}

}  // namespace

int main() {
  const int w = 32;
  std::printf("warp-wide shared access profiles (w = %d banks)\n\n", w);

  std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));

  std::iota(addrs.begin(), addrs.end(), 0);
  profile("contiguous (coalesced-style)", w, addrs);

  for (int l = 0; l < w; ++l) addrs[static_cast<std::size_t>(l)] = l * 15;
  profile("stride 15 (coprime, Thrust E)", w, addrs);

  for (int l = 0; l < w; ++l) addrs[static_cast<std::size_t>(l)] = l * 16;
  profile("stride 16 (gcd 16)", w, addrs);

  for (int l = 0; l < w; ++l) addrs[static_cast<std::size_t>(l)] = l * 32;
  profile("stride 32 (column of a 32xN tile)", w, addrs);

  for (int l = 0; l < w; ++l) addrs[static_cast<std::size_t>(l)] = l * 33;
  profile("stride 33 (padded transpose)", w, addrs);

  std::fill(addrs.begin(), addrs.end(), 5);
  profile("uniform broadcast", w, addrs);

  // The paper's access patterns: one gather round vs one worst-case merge
  // step, extracted from real schedules.
  std::printf("\nmergesort-specific patterns:\n");
  {
    // A CF gather round for (w=32, E=15): stride-E positions.
    gather::GatherShape shape{32, 15, 32, 32 * 15 / 2, 32 * 15 - 32 * 15 / 2};
    std::vector<std::int64_t> off(32), sz(32, 15);
    // simple split: first half of threads take A fully, rest B.
    std::int64_t run = 0;
    for (int i = 0; i < 32; ++i) {
      off[static_cast<std::size_t>(i)] = run;
      sz[static_cast<std::size_t>(i)] = i < 16 ? 15 : 0;
      run += sz[static_cast<std::size_t>(i)];
    }
    gather::RoundSchedule sched(shape, off, sz);
    for (int lane = 0; lane < w; ++lane)
      addrs[static_cast<std::size_t>(lane)] = sched.read(lane, 0).phys;
    profile("CF gather round 0 (E=15)", w, addrs);
  }
  {
    // Worst-case sequential-merge step: w threads scanning aligned columns.
    const auto tuples = worstcase::warp_tuples(worstcase::Params{32, 15}, false);
    std::int64_t ao = 0;
    int lane = 0;
    for (const auto& t : tuples) {
      addrs[static_cast<std::size_t>(lane++)] = ao;  // each thread's first A read
      ao += t.a;
    }
    profile("worst-case merge step (E=15)", w, addrs);
  }

  // End-to-end: phase-level profile of a full CF-Merge sort, nvprof-style.
  std::printf("\nfull-pipeline phase profile (CF-Merge, E=15, u=512, random n=245760):\n");
  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  workloads::WorkloadSpec spec;
  spec.dist = workloads::Distribution::UniformRandom;
  spec.n = 512 * 15 * 32;
  sort::MergeConfig cfg;
  cfg.e = 15;
  cfg.u = 512;
  cfg.variant = sort::Variant::CFMerge;
  std::vector<std::int32_t> data = workloads::generate(spec);
  const auto report = sort::merge_sort(launcher, data, cfg);
  analysis::print_phase_profile(std::cout, report.phases, report.n_padded);
  std::printf("\nmerge-phase conflicts: %llu (CF-Merge guarantee: always 0)\n",
              static_cast<unsigned long long>(report.merge_conflicts()));
  return 0;
}
