// Quickstart: sort an array with CF-Merge on the simulated GPU and inspect
// the cost report.
//
//   $ ./quickstart [n]
//
// Walks through the three things the library gives you:
//   1. a simulated device + launcher,
//   2. the two mergesort variants (Thrust-style baseline and CF-Merge),
//   3. nvprof-style counters proving CF-Merge's merges are conflict free.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <random>

#include "cfmerge.hpp"

using namespace cfmerge;

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 200000;

  // 1. Pick a device.  rtx2080ti() is the paper's card; scaled_turing(k)
  //    keeps the architecture but shrinks the SM count so small simulated
  //    inputs behave like large real ones.
  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  std::printf("device: %s (w=%d, %d SMs)\n", launcher.device().name.c_str(),
              launcher.device().warp_size, launcher.device().num_sms);

  // 2. Generate input and sort it with both variants.
  std::mt19937_64 rng(42);
  std::vector<std::int32_t> input(static_cast<std::size_t>(n));
  for (auto& x : input) x = static_cast<std::int32_t>(rng());

  for (const auto variant : {sort::Variant::Baseline, sort::Variant::CFMerge}) {
    sort::MergeConfig cfg;
    cfg.e = 15;   // elements per thread (paper's E; coprime with w = 32)
    cfg.u = 512;  // threads per block (100% occupancy on the 2080 Ti)
    cfg.variant = variant;

    std::vector<std::int32_t> data = input;
    const sort::SortReport report = sort::merge_sort(launcher, data, cfg);

    if (!std::is_sorted(data.begin(), data.end())) {
      std::fprintf(stderr, "sort failed!\n");
      return 1;
    }
    std::printf("\n%s\n",
                analysis::summarize(report, variant == sort::Variant::Baseline
                                                ? "thrust-baseline"
                                                : "cf-merge")
                    .c_str());
    std::printf("  passes: %d, padded n: %lld, blocksort conflicts (shared by both): %llu\n",
                report.passes, static_cast<long long>(report.n_padded),
                static_cast<unsigned long long>(report.blocksort_conflicts()));
  }

  // 3. The headline counter: merge-phase conflicts per variant.
  std::printf("\nCF-Merge's merge phase performs zero bank conflicts (the paper's\n"
              "nvprof check); the baseline's conflicts depend on the input and can\n"
              "be driven to Theta(E) per element by the Section 4 construction —\n"
              "see ../bench/fig5_worstcase_throughput and worst_case_demo.\n");
  return 0;
}
