// Adversarial-input demo: build the Section 4 worst-case permutation, sort
// it with both variants, and watch the baseline's merge conflicts explode
// while CF-Merge stays flat.
//
//   $ ./worst_case_demo [tiles]
//
// This is the end-to-end version of the paper's Figures 5/6 at one size.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <random>

#include "cfmerge.hpp"

using namespace cfmerge;

int main(int argc, char** argv) {
  std::int64_t tiles = argc > 1 ? std::atoll(argv[1]) : 32;
  while (tiles & (tiles - 1)) ++tiles;  // builder needs a power of two

  const int e = 15, u = 512;
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(4));
  const int w = launcher.device().warp_size;
  const std::int64_t n = tiles * u * e;

  const worstcase::Params params{w, e};
  std::printf("worst-case construction for w=%d, E=%d: d=%lld, q=%lld, r=%lld\n", w, e,
              static_cast<long long>(params.d()), static_cast<long long>(params.q()),
              static_cast<long long>(params.r()));
  std::printf("Theorem 8 predicts %lld conflicts per warp per merge (trivial bound %lld)\n\n",
              static_cast<long long>(worstcase::predicted_warp_conflicts(params)),
              static_cast<long long>(worstcase::trivial_warp_conflict_bound(params)));

  // The adversarial permutation of 0..n-1 and a random control input.
  const std::vector<std::int32_t> worst = worstcase::worst_case_sort_input(params, u, n);
  std::vector<std::int32_t> random_input(static_cast<std::size_t>(n));
  std::mt19937_64 rng(7);
  for (auto& x : random_input) x = static_cast<std::int32_t>(rng());

  analysis::Table table("n = " + std::to_string(n));
  table.set_header({"variant", "input", "time (us)", "elements/us", "merge conflicts",
                    "conflicts/access"});
  double base_worst_us = 0, cf_worst_us = 0, base_rand_us = 0;
  for (const auto variant : {sort::Variant::Baseline, sort::Variant::CFMerge}) {
    for (const bool adversarial : {false, true}) {
      sort::MergeConfig cfg;
      cfg.e = e;
      cfg.u = u;
      cfg.variant = variant;
      std::vector<std::int32_t> data(adversarial ? worst : random_input);
      const auto report = sort::merge_sort(launcher, data, cfg);
      if (!std::is_sorted(data.begin(), data.end())) {
        std::fprintf(stderr, "sort failed!\n");
        return 1;
      }
      const bool is_base = variant == sort::Variant::Baseline;
      if (is_base && adversarial) base_worst_us = report.microseconds;
      if (is_base && !adversarial) base_rand_us = report.microseconds;
      if (!is_base && adversarial) cf_worst_us = report.microseconds;
      table.add_row({is_base ? "thrust-baseline" : "cf-merge",
                     adversarial ? "worst-case" : "uniform-random",
                     analysis::Table::num(report.microseconds, 1),
                     analysis::Table::num(report.throughput(), 1),
                     std::to_string(report.merge_conflicts()),
                     analysis::Table::num(analysis::merge_conflicts_per_access(report), 3)});
    }
  }
  table.print(std::cout);

  std::printf("\nbaseline worst-case slowdown: %.2fx\n", base_worst_us / base_rand_us);
  std::printf("CF-Merge speedup on the worst case: %.2fx\n", base_worst_us / cf_worst_us);
  std::printf("(paper, RTX 2080 Ti: avg 1.37x / max 1.47x for E=15, u=512)\n");
  return 0;
}
