// Parameter tuner: automates the paper's Section 5 software-parameter
// discussion.  Thrust ships (E=17, u=256); the paper found (E=15, u=512)
// faster via occupancy.  This example enumerates candidates for a device,
// ranks them statically, measures the leaders, and prints the verdict.
//
//   $ ./parameter_tuner [sms] [threads]
//
// `threads` is the host worker-thread count for block simulation (0 =
// CFMERGE_SIM_THREADS env or sequential); the measured ranking is
// bit-identical for every value.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "cfmerge.hpp"

using namespace cfmerge;

int main(int argc, char** argv) {
  const int sms = argc > 1 ? std::atoi(argv[1]) : 4;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 0;
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(sms));
  launcher.set_threads(threads);
  std::printf("Tuning (E, u) for %s (CF-Merge variant)\n\n",
              launcher.device().name.c_str());

  analysis::TuneOptions opts;
  opts.e_min = 8;
  opts.e_max = 24;
  auto candidates = analysis::enumerate_candidates(launcher.device(), opts);
  std::printf("%zu candidates survive the occupancy filter; measuring the top 8...\n\n",
              candidates.size());
  analysis::measure_candidates(launcher, candidates, opts, /*top_k=*/8,
                               /*tiles_per_candidate=*/16);

  analysis::Table t("ranked candidates");
  t.set_header({"rank", "E", "u", "coprime(32,E)", "occupancy", "limiter",
                "measured elem/us"});
  const int shown = std::min<int>(8, static_cast<int>(candidates.size()));
  for (int i = 0; i < shown; ++i) {
    const auto& c = candidates[static_cast<std::size_t>(i)];
    t.add_row({std::to_string(i + 1), std::to_string(c.e), std::to_string(c.u),
               c.coprime ? "yes" : "no", analysis::Table::num(c.occupancy, 2), c.limiter,
               c.measured_throughput > 0 ? analysis::Table::num(c.measured_throughput, 1)
                                         : "-"});
  }
  t.print(std::cout);

  // Reference points the paper discusses.
  std::printf("\nreference points:\n");
  for (const auto& [e, u, who] :
       {std::tuple{15, 512, "paper's choice"}, std::tuple{17, 256, "Thrust default"}}) {
    const int regs = sort::cost::cfmerge_regs_per_thread(e);
    const auto occ = gpusim::compute_occupancy(
        launcher.device(), u, static_cast<std::size_t>(u) * e * 4, regs);
    std::printf("  E=%-2d u=%-4d (%s): occupancy %.2f (%s-limited)\n", e, u, who,
                occ.occupancy, occ.limiter.c_str());
  }
  if (!candidates.empty())
    std::printf("\nwinner: E=%d, u=%d at %.1f elements/us\n", candidates[0].e,
                candidates[0].u, candidates[0].measured_throughput);
  return 0;
}
