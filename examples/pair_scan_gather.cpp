// Beyond mergesort: the paper's conclusion notes that the load-balanced dual
// subsequence gather converts ANY algorithm that scans a pair of arrays in
// parallel into a bank conflict free one — once a thread's two subsequences
// sit in registers, it can process them however it likes.
//
// This example computes the intersection size of two sorted sets (distinct
// keys within each set) that way.  In the merged order, a key present in
// both sets appears exactly twice, adjacently — so each thread merges its
// merge-path window and counts equal-adjacent pairs (plus one boundary
// comparison with the next thread, a register shuffle on a real GPU).
//
//   * CF kernel: dual subsequence gather (zero conflicts) + odd-even network
//   * baseline: per-thread sequential merge from shared memory (conflicts)
//
//   $ ./pair_scan_gather [half]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <random>
#include <vector>

#include "cfmerge.hpp"

using namespace cfmerge;

namespace {

struct KernelResult {
  std::int64_t matches = 0;
  std::uint64_t merge_conflicts = 0;
  std::uint64_t merge_accesses = 0;
};

std::int64_t count_adjacent_equal(const std::vector<int>& merged) {
  std::int64_t m = 0;
  for (std::size_t k = 0; k + 1 < merged.size(); ++k)
    if (merged[k] == merged[k + 1]) ++m;
  return m;
}

KernelResult intersect(gpusim::Launcher& launcher, const std::vector<int>& a,
                       const std::vector<int>& b, int e, int u, bool use_cf_gather) {
  KernelResult result;
  launcher.launch(use_cf_gather ? "intersect_cf" : "intersect_base",
                  gpusim::LaunchShape{1, u, 0, 32}, [&](gpusim::BlockContext& ctx) {
    const int w = ctx.lanes();
    const std::int64_t la = static_cast<std::int64_t>(a.size());
    const std::int64_t lb = static_cast<std::int64_t>(b.size());
    gather::GatherShape shape{w, e, u, la, lb};
    auto [off, size] =
        gather::block_splits<int>(shape, std::span<const int>(a), std::span<const int>(b));

    gpusim::SharedTile<int> tile(ctx, static_cast<std::size_t>(u) * e);
    std::vector<int> regs(static_cast<std::size_t>(u) * e);

    if (use_cf_gather) {
      gather::RoundSchedule sched(shape, off, size);
      for (std::int64_t x = 0; x < la; ++x)
        tile.raw()[static_cast<std::size_t>(
            gather::cf_position_of_a(sched.pi(), sched.rho(), x))] =
            a[static_cast<std::size_t>(x)];
      for (std::int64_t y = 0; y < lb; ++y)
        tile.raw()[static_cast<std::size_t>(
            gather::cf_position_of_b(sched.pi(), sched.rho(), y))] =
            b[static_cast<std::size_t>(y)];
      ctx.phase("merge");
      gather::dual_subsequence_gather(ctx, tile, sched, std::span<int>(regs));
      for (int warp = 0; warp < ctx.warps(); ++warp) {
        for (int lane = 0; lane < w; ++lane) {
          std::span<int> r(regs.data() + static_cast<std::size_t>(warp * w + lane) *
                                             static_cast<std::size_t>(e),
                           static_cast<std::size_t>(e));
          sort::odd_even_transposition_sort(r);
        }
        ctx.charge_compute(warp, static_cast<std::uint64_t>(
                                     sort::odd_even_network_size(e) *
                                     sort::cost::kCompareExchangeInstrs));
      }
    } else {
      std::copy(a.begin(), a.end(), tile.raw().begin());
      std::copy(b.begin(), b.end(), tile.raw().begin() + static_cast<std::ptrdiff_t>(la));
      std::vector<sort::MergeLaneDesc> descs(static_cast<std::size_t>(u));
      for (int i = 0; i < u; ++i)
        descs[static_cast<std::size_t>(i)] = {
            off[static_cast<std::size_t>(i)], size[static_cast<std::size_t>(i)],
            static_cast<std::int64_t>(i) * e - off[static_cast<std::size_t>(i)],
            e - size[static_cast<std::size_t>(i)]};
      ctx.phase("merge");
      sort::warp_serial_merge(ctx, tile, std::span<const sort::MergeLaneDesc>(descs), e,
                              [](std::int64_t x) { return x; },
                              [la](std::int64_t y) { return la + y; }, std::span<int>(regs));
    }

    // Count equal-adjacent pairs; the cross-thread boundary comparison is a
    // warp shuffle (one instruction) on real hardware.
    ctx.phase("count");
    result.matches = count_adjacent_equal(regs);
    for (int warp = 0; warp < ctx.warps(); ++warp)
      ctx.charge_compute(warp, static_cast<std::uint64_t>(e + 1));

    for (const auto& [name, c] : ctx.counters().phases())
      if (name == "merge") {
        result.merge_conflicts = c.bank_conflicts;
        result.merge_accesses = c.shared_accesses;
      }
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int e = 16;  // deliberately non-coprime with w = 32: rho earns its keep
  const int u = 512;
  const std::int64_t total = static_cast<std::int64_t>(u) * e;
  std::int64_t half = argc > 1 ? std::atoll(argv[1]) : total / 2;
  half = std::clamp<std::int64_t>(half, 0, total);

  // Distinct keys within each set (so the merged order has each shared key
  // exactly twice, adjacent), drawn from an overlapping universe.
  std::mt19937_64 rng(11);
  std::vector<int> universe(static_cast<std::size_t>(total) * 2);
  std::iota(universe.begin(), universe.end(), 0);
  std::shuffle(universe.begin(), universe.end(), rng);
  std::vector<int> a(universe.begin(), universe.begin() + static_cast<std::ptrdiff_t>(half));
  std::shuffle(universe.begin(), universe.end(), rng);
  std::vector<int> b(universe.begin(),
                     universe.begin() + static_cast<std::ptrdiff_t>(total - half));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  std::vector<int> ref;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(ref));

  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  const auto cf = intersect(launcher, a, b, e, u, /*use_cf_gather=*/true);
  const auto base = intersect(launcher, a, b, e, u, /*use_cf_gather=*/false);

  std::printf("set intersection of |A|=%zu and |B|=%zu sorted keys (E=%d, u=%d)\n\n",
              a.size(), b.size(), e, u);
  std::printf("reference matches:          %zu\n", ref.size());
  std::printf("CF gather kernel matches:   %lld   (merge conflicts: %llu over %llu accesses)\n",
              static_cast<long long>(cf.matches),
              static_cast<unsigned long long>(cf.merge_conflicts),
              static_cast<unsigned long long>(cf.merge_accesses));
  std::printf("baseline scan matches:      %lld   (merge conflicts: %llu over %llu accesses)\n",
              static_cast<long long>(base.matches),
              static_cast<unsigned long long>(base.merge_conflicts),
              static_cast<unsigned long long>(base.merge_accesses));
  if (cf.matches != static_cast<std::int64_t>(ref.size()) || base.matches != cf.matches) {
    std::fprintf(stderr, "MISMATCH!\n");
    return 1;
  }
  if (cf.merge_conflicts != 0) {
    std::fprintf(stderr, "CF kernel conflicted!\n");
    return 1;
  }
  std::printf("\nThe gather-based kernel scans both lists with zero bank conflicts —\n"
              "the paper's closing observation: any parallel pair-of-arrays scan can\n"
              "be made bank conflict free this way.\n");
  return 0;
}
