file(REMOVE_RECURSE
  "CMakeFiles/dmm_mappings.dir/dmm_mappings.cpp.o"
  "CMakeFiles/dmm_mappings.dir/dmm_mappings.cpp.o.d"
  "dmm_mappings"
  "dmm_mappings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmm_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
