# Empty dependencies file for dmm_mappings.
# This may be replaced when dependencies are built.
