file(REMOVE_RECURSE
  "CMakeFiles/fig5_worstcase_throughput.dir/fig5_worstcase_throughput.cpp.o"
  "CMakeFiles/fig5_worstcase_throughput.dir/fig5_worstcase_throughput.cpp.o.d"
  "fig5_worstcase_throughput"
  "fig5_worstcase_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_worstcase_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
