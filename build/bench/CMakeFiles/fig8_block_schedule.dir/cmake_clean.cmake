file(REMOVE_RECURSE
  "CMakeFiles/fig8_block_schedule.dir/fig8_block_schedule.cpp.o"
  "CMakeFiles/fig8_block_schedule.dir/fig8_block_schedule.cpp.o.d"
  "fig8_block_schedule"
  "fig8_block_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_block_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
