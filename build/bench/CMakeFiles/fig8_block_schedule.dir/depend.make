# Empty dependencies file for fig8_block_schedule.
# This may be replaced when dependencies are built.
