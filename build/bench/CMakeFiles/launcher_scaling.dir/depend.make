# Empty dependencies file for launcher_scaling.
# This may be replaced when dependencies are built.
