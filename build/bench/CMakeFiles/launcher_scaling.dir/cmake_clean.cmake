file(REMOVE_RECURSE
  "CMakeFiles/launcher_scaling.dir/launcher_scaling.cpp.o"
  "CMakeFiles/launcher_scaling.dir/launcher_scaling.cpp.o.d"
  "launcher_scaling"
  "launcher_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/launcher_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
