file(REMOVE_RECURSE
  "CMakeFiles/fig1_strided_access.dir/fig1_strided_access.cpp.o"
  "CMakeFiles/fig1_strided_access.dir/fig1_strided_access.cpp.o.d"
  "fig1_strided_access"
  "fig1_strided_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_strided_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
