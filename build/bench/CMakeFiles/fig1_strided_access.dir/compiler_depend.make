# Empty compiler generated dependencies file for fig1_strided_access.
# This may be replaced when dependencies are built.
