file(REMOVE_RECURSE
  "CMakeFiles/fig7_read_stalls.dir/fig7_read_stalls.cpp.o"
  "CMakeFiles/fig7_read_stalls.dir/fig7_read_stalls.cpp.o.d"
  "fig7_read_stalls"
  "fig7_read_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_read_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
