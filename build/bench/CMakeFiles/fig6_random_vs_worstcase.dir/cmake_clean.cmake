file(REMOVE_RECURSE
  "CMakeFiles/fig6_random_vs_worstcase.dir/fig6_random_vs_worstcase.cpp.o"
  "CMakeFiles/fig6_random_vs_worstcase.dir/fig6_random_vs_worstcase.cpp.o.d"
  "fig6_random_vs_worstcase"
  "fig6_random_vs_worstcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_random_vs_worstcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
