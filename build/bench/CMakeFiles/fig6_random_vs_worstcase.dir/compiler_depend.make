# Empty compiler generated dependencies file for fig6_random_vs_worstcase.
# This may be replaced when dependencies are built.
