# Empty dependencies file for fig2_schedule_coprime.
# This may be replaced when dependencies are built.
