file(REMOVE_RECURSE
  "CMakeFiles/fig2_schedule_coprime.dir/fig2_schedule_coprime.cpp.o"
  "CMakeFiles/fig2_schedule_coprime.dir/fig2_schedule_coprime.cpp.o.d"
  "fig2_schedule_coprime"
  "fig2_schedule_coprime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_schedule_coprime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
