file(REMOVE_RECURSE
  "CMakeFiles/warp_width_portability.dir/warp_width_portability.cpp.o"
  "CMakeFiles/warp_width_portability.dir/warp_width_portability.cpp.o.d"
  "warp_width_portability"
  "warp_width_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warp_width_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
