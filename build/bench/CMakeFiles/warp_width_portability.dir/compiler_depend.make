# Empty compiler generated dependencies file for warp_width_portability.
# This may be replaced when dependencies are built.
