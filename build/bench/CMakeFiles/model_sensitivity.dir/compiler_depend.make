# Empty compiler generated dependencies file for model_sensitivity.
# This may be replaced when dependencies are built.
