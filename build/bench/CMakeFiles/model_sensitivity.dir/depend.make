# Empty dependencies file for model_sensitivity.
# This may be replaced when dependencies are built.
