file(REMOVE_RECURSE
  "CMakeFiles/model_sensitivity.dir/model_sensitivity.cpp.o"
  "CMakeFiles/model_sensitivity.dir/model_sensitivity.cpp.o.d"
  "model_sensitivity"
  "model_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
