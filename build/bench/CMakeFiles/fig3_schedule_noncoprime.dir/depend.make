# Empty dependencies file for fig3_schedule_noncoprime.
# This may be replaced when dependencies are built.
