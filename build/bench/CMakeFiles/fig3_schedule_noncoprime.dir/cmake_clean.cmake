file(REMOVE_RECURSE
  "CMakeFiles/fig3_schedule_noncoprime.dir/fig3_schedule_noncoprime.cpp.o"
  "CMakeFiles/fig3_schedule_noncoprime.dir/fig3_schedule_noncoprime.cpp.o.d"
  "fig3_schedule_noncoprime"
  "fig3_schedule_noncoprime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_schedule_noncoprime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
