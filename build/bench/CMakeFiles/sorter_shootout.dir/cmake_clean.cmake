file(REMOVE_RECURSE
  "CMakeFiles/sorter_shootout.dir/sorter_shootout.cpp.o"
  "CMakeFiles/sorter_shootout.dir/sorter_shootout.cpp.o.d"
  "sorter_shootout"
  "sorter_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorter_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
