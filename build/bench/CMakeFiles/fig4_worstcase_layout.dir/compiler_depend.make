# Empty compiler generated dependencies file for fig4_worstcase_layout.
# This may be replaced when dependencies are built.
