file(REMOVE_RECURSE
  "CMakeFiles/fig4_worstcase_layout.dir/fig4_worstcase_layout.cpp.o"
  "CMakeFiles/fig4_worstcase_layout.dir/fig4_worstcase_layout.cpp.o.d"
  "fig4_worstcase_layout"
  "fig4_worstcase_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_worstcase_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
