# Empty compiler generated dependencies file for micro_gather.
# This may be replaced when dependencies are built.
