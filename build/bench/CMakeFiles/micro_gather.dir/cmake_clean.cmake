file(REMOVE_RECURSE
  "CMakeFiles/micro_gather.dir/micro_gather.cpp.o"
  "CMakeFiles/micro_gather.dir/micro_gather.cpp.o.d"
  "micro_gather"
  "micro_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
