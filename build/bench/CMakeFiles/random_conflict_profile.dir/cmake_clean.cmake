file(REMOVE_RECURSE
  "CMakeFiles/random_conflict_profile.dir/random_conflict_profile.cpp.o"
  "CMakeFiles/random_conflict_profile.dir/random_conflict_profile.cpp.o.d"
  "random_conflict_profile"
  "random_conflict_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_conflict_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
