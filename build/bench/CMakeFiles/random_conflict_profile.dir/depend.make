# Empty dependencies file for random_conflict_profile.
# This may be replaced when dependencies are built.
