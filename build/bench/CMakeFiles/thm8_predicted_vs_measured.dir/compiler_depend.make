# Empty compiler generated dependencies file for thm8_predicted_vs_measured.
# This may be replaced when dependencies are built.
