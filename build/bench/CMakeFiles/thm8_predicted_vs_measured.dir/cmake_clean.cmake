file(REMOVE_RECURSE
  "CMakeFiles/thm8_predicted_vs_measured.dir/thm8_predicted_vs_measured.cpp.o"
  "CMakeFiles/thm8_predicted_vs_measured.dir/thm8_predicted_vs_measured.cpp.o.d"
  "thm8_predicted_vs_measured"
  "thm8_predicted_vs_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm8_predicted_vs_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
