file(REMOVE_RECURSE
  "CMakeFiles/parameter_tuner.dir/parameter_tuner.cpp.o"
  "CMakeFiles/parameter_tuner.dir/parameter_tuner.cpp.o.d"
  "parameter_tuner"
  "parameter_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
