# Empty dependencies file for parameter_tuner.
# This may be replaced when dependencies are built.
