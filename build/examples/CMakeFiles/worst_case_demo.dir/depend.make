# Empty dependencies file for worst_case_demo.
# This may be replaced when dependencies are built.
