file(REMOVE_RECURSE
  "CMakeFiles/worst_case_demo.dir/worst_case_demo.cpp.o"
  "CMakeFiles/worst_case_demo.dir/worst_case_demo.cpp.o.d"
  "worst_case_demo"
  "worst_case_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worst_case_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
