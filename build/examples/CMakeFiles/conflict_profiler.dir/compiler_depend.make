# Empty compiler generated dependencies file for conflict_profiler.
# This may be replaced when dependencies are built.
