file(REMOVE_RECURSE
  "CMakeFiles/conflict_profiler.dir/conflict_profiler.cpp.o"
  "CMakeFiles/conflict_profiler.dir/conflict_profiler.cpp.o.d"
  "conflict_profiler"
  "conflict_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
