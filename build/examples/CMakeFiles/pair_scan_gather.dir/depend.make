# Empty dependencies file for pair_scan_gather.
# This may be replaced when dependencies are built.
