file(REMOVE_RECURSE
  "CMakeFiles/pair_scan_gather.dir/pair_scan_gather.cpp.o"
  "CMakeFiles/pair_scan_gather.dir/pair_scan_gather.cpp.o.d"
  "pair_scan_gather"
  "pair_scan_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_scan_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
