# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "20000")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_worst_case_demo "/root/repo/build/examples/worst_case_demo" "8")
set_tests_properties(example_worst_case_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_conflict_profiler "/root/repo/build/examples/conflict_profiler")
set_tests_properties(example_conflict_profiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pair_scan_gather "/root/repo/build/examples/pair_scan_gather")
set_tests_properties(example_pair_scan_gather PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_parameter_tuner "/root/repo/build/examples/parameter_tuner" "2")
set_tests_properties(example_parameter_tuner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
